// Structural tests for the EdgeProgram representation and the programs the
// FusionPass emits for the paper's model patterns.
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "ir/passes/fusion.h"
#include "ir/passes/recompute.h"
#include "ir/autodiff.h"
#include "models/models.h"
#include "support/rng.h"

namespace triad {
namespace {

TEST(EdgeProgramStruct, DumpIsReadable) {
  EdgeProgram ep;
  ep.mapping = WorkMapping::VertexBalanced;
  ep.dst_major = true;
  ep.phases.resize(1);
  EPInstr load;
  load.op = EPOp::LoadU;
  load.dst = 0;
  load.tensor = 3;
  load.width = 8;
  EPInstr red;
  red.op = EPOp::Reduce;
  red.a = 0;
  red.acc = 0;
  red.width = 8;
  ep.phases[0].instrs = {load, red};
  ep.vertex_outputs.push_back({7, 0, 8, 0, false, false, false});
  ep.num_regs = 1;
  ep.reg_width = {8};
  const std::string d = ep.dump();
  EXPECT_NE(d.find("load_u"), std::string::npos);
  EXPECT_NE(d.find("reduce"), std::string::npos);
  EXPECT_NE(d.find("mapping=vertex"), std::string::npos);
}

TEST(EdgeProgramStruct, GatForwardProgramShape) {
  // The optimized GAT forward region must be: 3 phases (softmax), vertex
  // outputs for max, denominator and the aggregate, and no StoreE in
  // inference mode (everything lives in registers).
  Rng rng(1);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_gat(cfg, rng), ours(), /*training=*/false);
  ASSERT_EQ(c.ir.programs.size(), 1u);
  const EdgeProgram& ep = c.ir.programs[0];
  EXPECT_EQ(ep.phases.size(), 3u);
  EXPECT_EQ(ep.vertex_outputs.size(), 3u);
  EXPECT_TRUE(ep.edge_outputs.empty());
  EXPECT_EQ(ep.mapping, WorkMapping::VertexBalanced);
  EXPECT_TRUE(ep.dst_major);
}

TEST(EdgeProgramStruct, GatTrainingStashesNothingPerEdgeUnderRecompute) {
  // Fusion+recompute: the forward program keeps max/denominator (vertex) but
  // materializes no O(|E|) tensor; the backward program recomputes the
  // softmax chain (its instruction stream contains Exp).
  Rng rng(2);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_gat(cfg, rng), ours(), /*training=*/true);
  ASSERT_GE(c.ir.programs.size(), 2u);
  const EdgeProgram& fwd = c.ir.programs[0];
  EXPECT_TRUE(fwd.edge_outputs.empty())
      << "forward fused kernel stored an edge tensor despite recompute";
  bool backward_recomputes_exp = false;
  for (std::size_t p = 1; p < c.ir.programs.size(); ++p) {
    for (const EPPhase& ph : c.ir.programs[p].phases) {
      for (const EPInstr& in : ph.instrs) {
        backward_recomputes_exp |= in.op == EPOp::Exp;
      }
    }
  }
  EXPECT_TRUE(backward_recomputes_exp);
}

TEST(EdgeProgramStruct, GatTrainingWithStashStoresEdgeTensors) {
  Rng rng(3);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 3;
  Compiled c =
      compile_model(build_gat(cfg, rng), ours_fusion_stash(), /*training=*/true);
  std::size_t stored = 0;
  for (const EdgeProgram& ep : c.ir.programs) {
    stored += ep.edge_outputs.size();
  }
  EXPECT_GE(stored, 1u) << "stash mode must StoreE at least one edge tensor";
}

TEST(EdgeProgramStruct, EdgeConvBackwardUsesMaxBwdMask) {
  Rng rng(4);
  EdgeConvConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = {8};
  cfg.num_classes = 3;
  Compiled c = compile_model(build_edgeconv(cfg, rng), ours(), true);
  bool has_mask = false, has_atomic_reverse = false;
  for (const EdgeProgram& ep : c.ir.programs) {
    for (const EPPhase& ph : ep.phases) {
      for (const EPInstr& in : ph.instrs) has_mask |= in.op == EPOp::MaxBwdMask;
    }
    for (const VertexOutput& vo : ep.vertex_outputs) {
      has_atomic_reverse |= vo.reverse && vo.atomic;
    }
  }
  EXPECT_TRUE(has_mask);
  EXPECT_TRUE(has_atomic_reverse)
      << "grad toward the source endpoint needs a cross-orientation reduce";
}

TEST(EdgeProgramStruct, MonetForwardFusesGaussian) {
  Rng rng(5);
  MoNetConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.kernels = 2;
  cfg.pseudo_dim = 2;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_monet(cfg, rng), ours(), false);
  ASSERT_GE(c.ir.programs.size(), 1u);
  bool has_gauss = false;
  for (const EPPhase& ph : c.ir.programs[0].phases) {
    for (const EPInstr& in : ph.instrs) has_gauss |= in.op == EPOp::Gauss;
  }
  EXPECT_TRUE(has_gauss);
}

TEST(EdgeProgramStruct, RegisterWidthsConsistent) {
  // Every instruction's dst width must match the declared register width.
  Rng rng(6);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_gat(cfg, rng), ours(), true);
  for (const EdgeProgram& ep : c.ir.programs) {
    for (const EPPhase& ph : ep.phases) {
      for (const EPInstr& in : ph.instrs) {
        if (in.dst >= 0) {
          ASSERT_LT(in.dst, ep.num_regs);
          EXPECT_EQ(ep.reg_width[in.dst], in.width)
              << to_string(in.op) << " writes r" << in.dst;
        }
      }
    }
  }
}

}  // namespace
}  // namespace triad
