// Unit tests for Tensor and dense math in src/tensor.
#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace triad {
namespace {

TEST(Tensor, ShapeAndFill) {
  Tensor t = Tensor::zeros(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  for (float v : t.flat()) EXPECT_EQ(v, 0.f);
  t.fill(2.5f);
  EXPECT_EQ(t.at(2, 3), 2.5f);
}

TEST(Tensor, SharedOwnership) {
  Tensor a = Tensor::full(2, 2, 1.f);
  Tensor b = a;  // shallow
  b.at(0, 0) = 9.f;
  EXPECT_EQ(a.at(0, 0), 9.f);
  Tensor c = a.clone();
  c.at(0, 0) = 7.f;
  EXPECT_EQ(a.at(0, 0), 9.f);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t = Tensor::zeros(2, 2);
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, -1), Error);
}

TEST(Tensor, XavierWithinBound) {
  Rng rng(1);
  Tensor t = Tensor::xavier(64, 32, rng, MemTag::kActivations);
  const float bound = std::sqrt(6.f / (64 + 32));
  for (float v : t.flat()) {
    EXPECT_LE(std::fabs(v), bound);
  }
}

TEST(Ops, MatmulIdentity) {
  Tensor a(2, 3);
  float* pa = a.data();
  for (int i = 0; i < 6; ++i) pa[i] = static_cast<float>(i + 1);
  Tensor eye = Tensor::zeros(3, 3);
  for (int i = 0; i < 3; ++i) eye.at(i, i) = 1.f;
  Tensor c = Tensor::zeros(2, 3);
  ops::matmul(a, eye, c);
  EXPECT_TRUE(ops::allclose(a, c));
}

TEST(Ops, MatmulKnownValues) {
  Tensor a(2, 2), b(2, 2), c(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  ops::matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.f);
}

TEST(Ops, MatmulTransposedMatchesManual) {
  Rng rng(3);
  Tensor a = Tensor::randn(7, 5, rng);
  Tensor b = Tensor::randn(7, 4, rng);
  // c = aᵀ b : (5,4)
  Tensor c = Tensor::zeros(5, 4);
  ops::matmul(a, b, c, /*trans_a=*/true);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      float ref = 0.f;
      for (int k = 0; k < 7; ++k) ref += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), ref, 1e-4f);
    }
  }
}

TEST(Ops, MatmulTransBMatchesManual) {
  Rng rng(4);
  Tensor a = Tensor::randn(3, 5, rng);
  Tensor b = Tensor::randn(6, 5, rng);
  Tensor c = Tensor::zeros(3, 6);
  ops::matmul(a, b, c, false, /*trans_b=*/true);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 6; ++j) {
      float ref = 0.f;
      for (int k = 0; k < 5; ++k) ref += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(c.at(i, j), ref, 1e-4f);
    }
  }
}

TEST(Ops, MatmulAccumulate) {
  Tensor a = Tensor::full(2, 2, 1.f);
  Tensor b = Tensor::full(2, 2, 1.f);
  Tensor c = Tensor::full(2, 2, 10.f);
  ops::matmul(a, b, c, false, false, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c.at(0, 0), 12.f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(ops::matmul(a, b, c), Error);
}

TEST(Ops, ActivationsPointwise) {
  Tensor x(1, 4);
  x.at(0, 0) = -2.f; x.at(0, 1) = -0.5f; x.at(0, 2) = 0.f; x.at(0, 3) = 3.f;
  Tensor y(1, 4);
  ops::leaky_relu(x, y, 0.1f);
  EXPECT_FLOAT_EQ(y.at(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.f);
  ops::relu(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.f);
  ops::elu(x, y, 1.f);
  EXPECT_NEAR(y.at(0, 0), std::exp(-2.f) - 1.f, 1e-6f);
  ops::exp(x, y);
  EXPECT_NEAR(y.at(0, 3), std::exp(3.f), 1e-3f);
}

TEST(Ops, BinaryElementwise) {
  Tensor a = Tensor::full(2, 2, 6.f);
  Tensor b = Tensor::full(2, 2, 3.f);
  Tensor c(2, 2);
  ops::add(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 9.f);
  ops::sub(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 3.f);
  ops::mul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 18.f);
  ops::div(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.f);
}

TEST(Ops, MulHeadBroadcastsPerHead) {
  // 2 heads, f=3: b scales each head block.
  Tensor a(1, 6);
  for (int j = 0; j < 6; ++j) a.at(0, j) = 1.f;
  Tensor b(1, 2);
  b.at(0, 0) = 2.f;
  b.at(0, 1) = 5.f;
  Tensor c(1, 6);
  ops::mul_head(a, b, c, 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 2.f);
  EXPECT_FLOAT_EQ(c.at(0, 3), 5.f);
  EXPECT_FLOAT_EQ(c.at(0, 5), 5.f);
}

TEST(Ops, DotHeadReducesPerHead) {
  Tensor a(1, 4), b(1, 4);
  for (int j = 0; j < 4; ++j) {
    a.at(0, j) = static_cast<float>(j + 1);
    b.at(0, j) = 1.f;
  }
  Tensor c(1, 2);
  ops::dot_head(a, b, c, 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 3.f);   // 1+2
  EXPECT_FLOAT_EQ(c.at(0, 1), 7.f);   // 3+4
}

TEST(Ops, HeadSumAndBroadcastRoundTrip) {
  Tensor x(2, 6);  // 3 heads, f=2
  for (int r = 0; r < 2; ++r) {
    for (int j = 0; j < 6; ++j) x.at(r, j) = static_cast<float>(j);
  }
  Tensor s(2, 2);
  ops::head_sum(x, s, 3, 0.5f);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0.5f * (0 + 2 + 4));
  EXPECT_FLOAT_EQ(s.at(0, 1), 0.5f * (1 + 3 + 5));
  Tensor b(2, 6);
  ops::head_broadcast(s, b, 3, 2.f);
  EXPECT_FLOAT_EQ(b.at(0, 0), 2.f * s.at(0, 0));
  EXPECT_FLOAT_EQ(b.at(0, 5), 2.f * s.at(0, 1));
}

TEST(Ops, ConcatAndSlice) {
  Tensor a = Tensor::full(2, 2, 1.f);
  Tensor b = Tensor::full(2, 3, 2.f);
  Tensor c(2, 5);
  ops::concat_cols(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 1), 1.f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 2.f);
  Tensor s(2, 3);
  ops::slice_cols(c, s, 2, 5);
  EXPECT_FLOAT_EQ(s.at(1, 0), 2.f);
}

TEST(Ops, BiasAndBiasGrad) {
  Tensor x = Tensor::zeros(3, 2);
  Tensor b(1, 2);
  b.at(0, 0) = 1.f;
  b.at(0, 1) = -1.f;
  ops::add_bias(x, b);
  EXPECT_FLOAT_EQ(x.at(2, 0), 1.f);
  EXPECT_FLOAT_EQ(x.at(2, 1), -1.f);
  Tensor g = Tensor::full(3, 2, 2.f);
  Tensor bg(1, 2);
  ops::bias_grad(g, bg, false);
  EXPECT_FLOAT_EQ(bg.at(0, 0), 6.f);
}

TEST(Ops, SoftmaxCrossEntropyUniformLogits) {
  Tensor logits = Tensor::zeros(4, 3);
  IntTensor labels(4, 1);
  labels.fill(1);
  Tensor grad(4, 3);
  const float loss = ops::softmax_cross_entropy(logits, labels, &grad);
  EXPECT_NEAR(loss, std::log(3.f), 1e-5f);
  // gradient rows sum to zero, true-class entry negative.
  for (int r = 0; r < 4; ++r) {
    float row_sum = 0.f;
    for (int j = 0; j < 3; ++j) row_sum += grad.at(r, j);
    EXPECT_NEAR(row_sum, 0.f, 1e-6f);
    EXPECT_LT(grad.at(r, 1), 0.f);
  }
}

TEST(Ops, SoftmaxCrossEntropyGradMatchesFiniteDiff) {
  Rng rng(11);
  Tensor logits = Tensor::randn(5, 4, rng);
  IntTensor labels(5, 1);
  for (int r = 0; r < 5; ++r) labels.at(r, 0) = r % 4;
  Tensor grad(5, 4);
  ops::softmax_cross_entropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (int r = 0; r < 5; ++r) {
    for (int j = 0; j < 4; ++j) {
      Tensor pert = logits.clone();
      pert.at(r, j) += eps;
      const float lp = ops::softmax_cross_entropy(pert, labels, nullptr);
      pert.at(r, j) -= 2 * eps;
      const float lm = ops::softmax_cross_entropy(pert, labels, nullptr);
      EXPECT_NEAR(grad.at(r, j), (lp - lm) / (2 * eps), 2e-3f);
    }
  }
}

TEST(Ops, AccuracyCounts) {
  Tensor logits = Tensor::zeros(4, 2);
  logits.at(0, 1) = 1.f;  // pred 1
  logits.at(1, 0) = 1.f;  // pred 0
  logits.at(2, 1) = 1.f;  // pred 1
  logits.at(3, 1) = 1.f;  // pred 1
  IntTensor labels(4, 1);
  labels.at(0, 0) = 1;
  labels.at(1, 0) = 0;
  labels.at(2, 0) = 0;
  labels.at(3, 0) = 1;
  EXPECT_FLOAT_EQ(ops::accuracy(logits, labels), 0.75f);
}

TEST(Ops, AllcloseRespectsTolerance) {
  Tensor a = Tensor::full(2, 2, 1.f);
  Tensor b = Tensor::full(2, 2, 1.00001f);
  EXPECT_TRUE(ops::allclose(a, b));
  b.at(0, 0) = 1.1f;
  EXPECT_FALSE(ops::allclose(a, b));
  EXPECT_NEAR(ops::max_abs_diff(a, b), 0.1f, 1e-5f);
}

}  // namespace
}  // namespace triad
