// Pipelined sharded execution (engine/pipeline.h): the interior/frontier
// classification, the combine-dependency schedule, bit-identity of the
// dependency-driven path against the barrier path and K=1, the ready-flag
// handoff under repeated runs, and the boundary-stash elision accounting.
//
// The guarantee under test is exact: the pipeline reorders *when* work runs
// (frontier-first walks, combines firing mid-walk), never the fold order of
// any reduction — so every comparison here is memcmp on float bits, not a
// tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "baselines/strategy.h"
#include "engine/pipeline.h"
#include "engine/vm.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "models/models.h"
#include "models/trainer.h"
#include "support/counters.h"
#include "support/rng.h"

namespace triad {
namespace {

Graph test_graph() {
  Rng rng(11);
  return gen::rmat(7, 1500, rng);  // 128 vertices, skewed degrees
}

Tensor random_features(std::int64_t n, std::int64_t d, MemoryPool* pool) {
  Rng rng(23);
  Tensor t(n, d, MemTag::kInput, pool);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

IntTensor random_labels(std::int64_t n, std::int32_t classes) {
  Rng rng(29);
  IntTensor t(n, 1);
  for (std::int64_t v = 0; v < n; ++v) {
    t.at(v, 0) = static_cast<std::int32_t>(rng.uniform_int(classes));
  }
  return t;
}

void expect_bit_identical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs bitwise";
}

/// `ours()` / `ours_no_fusion()` with the pipeline knob off — the barrier
/// baseline the bit-identity sweep compares against.
Strategy without_pipeline(Strategy s) {
  s.pipeline = false;
  s.name += "(-pipeline)";
  return s;
}

struct RunResult {
  Tensor logits;
  std::vector<Tensor> params;
};

/// One deterministic training run; pseudo_dim > 0 builds the MoNet edge
/// pseudo-coordinates input.
template <typename BuildFn>
RunResult train_run(const Graph& g, BuildFn&& build, int shards, int steps,
                    std::int64_t in_dim, std::int64_t pseudo_dim,
                    const Strategy& strat) {
  Rng mrng(7);  // fixed: identical initial weights across runs
  Compiled c = compile_model(build(mrng), strat, /*training=*/true, g, shards,
                             PartitionStrategy::DegreeBalanced);
  std::vector<int> param_nodes = c.params;
  MemoryPool pool;
  Tensor pseudo =
      pseudo_dim > 0 ? make_pseudo_coords(g, pseudo_dim) : Tensor{};
  Trainer t(std::move(c), g, random_features(g.num_vertices(), in_dim, &pool),
            std::move(pseudo), &pool);
  const IntTensor labels = random_labels(g.num_vertices(), 4);
  for (int i = 0; i < steps; ++i) t.train_step(labels, 1e-2f);
  RunResult r{t.logits().clone(MemTag::kWorkspace), {}};
  for (int p : param_nodes) {
    r.params.push_back(t.runner().result(p).clone(MemTag::kWorkspace));
  }
  return r;
}

/// Pipelined-on vs barrier vs K=1 vs unsharded, all bitwise, for one model
/// under both the fused and unfused strategy (fusion changes which programs
/// have boundary reductions, so both are worth pinning).
template <typename BuildFn>
void check_bit_identity(const Graph& g, BuildFn&& build, std::int64_t in_dim,
                        std::int64_t pseudo_dim, const char* what) {
  for (const Strategy& strat : {ours(), ours_no_fusion()}) {
    const RunResult base =
        train_run(g, build, /*shards=*/0, 2, in_dim, pseudo_dim, strat);
    for (int k : {1, 4, 8}) {
      const RunResult on = train_run(g, build, k, 2, in_dim, pseudo_dim, strat);
      const RunResult off = train_run(g, build, k, 2, in_dim, pseudo_dim,
                                      without_pipeline(strat));
      expect_bit_identical(base.logits, on.logits, what);
      expect_bit_identical(base.logits, off.logits, what);
      ASSERT_EQ(base.params.size(), on.params.size());
      ASSERT_EQ(base.params.size(), off.params.size());
      for (std::size_t i = 0; i < base.params.size(); ++i) {
        expect_bit_identical(base.params[i], on.params[i], what);
        expect_bit_identical(base.params[i], off.params[i], what);
      }
    }
  }
}

TEST(Pipeline, GcnBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        GcnConfig cfg;
        cfg.in_dim = 6;
        cfg.hidden = {8};
        cfg.num_classes = 4;
        return build_gcn(cfg, r);
      },
      6, 0, "GCN");
}

TEST(Pipeline, GatBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        GatConfig cfg;
        cfg.in_dim = 6;
        cfg.hidden = 8;
        cfg.heads = 2;
        cfg.layers = 2;
        cfg.num_classes = 4;
        return build_gat(cfg, r);
      },
      6, 0, "GAT");
}

TEST(Pipeline, EdgeConvBitIdentical) {
  // Max reductions with argmax + reverse-orientation gradient combines.
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        EdgeConvConfig cfg;
        cfg.in_dim = 5;
        cfg.hidden = {8, 8};
        cfg.num_classes = 4;
        return build_edgeconv(cfg, r);
      },
      5, 0, "EdgeConv");
}

TEST(Pipeline, MoNetBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        MoNetConfig cfg;
        cfg.in_dim = 5;
        cfg.hidden = 8;
        cfg.layers = 2;
        cfg.kernels = 2;
        cfg.pseudo_dim = 2;
        cfg.num_classes = 4;
        return build_monet(cfg, r);
      },
      5, 2, "MoNet");
}

// --- interior/frontier classification ---------------------------------------

TEST(Pipeline, ClassificationMatchesBruteForce) {
  Rng rng(3);
  const Graph g = gen::rmat(6, 600, rng);  // 64 vertices
  const Partitioning part =
      Partitioning::build(g, 4, PartitionStrategy::DegreeBalanced);
  std::int64_t total_frontier = 0;
  for (const Shard& sh : part.shards()) {
    std::vector<char> is_frontier(g.num_vertices(), 0);
    std::int64_t fin = 0, fout = 0;
    for (std::int64_t v = sh.v_lo; v < sh.v_hi; ++v) {
      bool foreign = false;
      for (std::int64_t i = g.in_ptr()[v]; i < g.in_ptr()[v + 1]; ++i) {
        if (!sh.owns(g.in_src()[i])) foreign = true;
      }
      for (std::int64_t i = g.out_ptr()[v]; i < g.out_ptr()[v + 1]; ++i) {
        if (!sh.owns(g.out_dst()[i])) foreign = true;
      }
      is_frontier[v] = foreign;
      if (foreign) {
        fin += g.in_ptr()[v + 1] - g.in_ptr()[v];
        fout += g.out_ptr()[v + 1] - g.out_ptr()[v];
      }
    }
    // frontier and interior partition the owned range, each ascending.
    EXPECT_EQ(static_cast<std::int64_t>(sh.frontier.size() + sh.interior.size()),
              sh.num_vertices());
    for (std::int32_t v : sh.frontier) EXPECT_TRUE(is_frontier[v]);
    for (std::int32_t v : sh.interior) EXPECT_FALSE(is_frontier[v]);
    EXPECT_EQ(sh.frontier_in_edges, fin);
    EXPECT_EQ(sh.frontier_out_edges, fout);
    EXPECT_EQ(sh.interior_in_edges(), sh.num_in_edges() - fin);
    EXPECT_EQ(sh.interior_out_edges(), sh.num_out_edges() - fout);
    total_frontier += static_cast<std::int64_t>(sh.frontier.size());
  }
  EXPECT_EQ(part.total_frontier_vertices(), total_frontier);
}

TEST(Pipeline, EmptyShardsClassifyEmpty) {
  // K > |V|: trailing shards own nothing and must classify as nothing.
  Rng rng(5);
  const Graph g = gen::erdos_renyi(5, 12, rng);
  const Partitioning part =
      Partitioning::build(g, 8, PartitionStrategy::VertexRange);
  const PipelineSchedule sched(part);
  int empty = 0;
  for (const Shard& sh : part.shards()) {
    if (sh.num_vertices() == 0) {
      ++empty;
      EXPECT_TRUE(sh.frontier.empty());
      EXPECT_TRUE(sh.interior.empty());
      EXPECT_EQ(sh.frontier_in_edges, 0);
    }
    EXPECT_EQ(sched.init_pending(sh.id),
              static_cast<int>(sh.neighbor_shards.size()) + 1);
  }
  EXPECT_GT(empty, 0);
}

TEST(Pipeline, CompleteGraphIsAllFrontier) {
  // Complete directed graph, one shard per vertex pair: every vertex has a
  // foreign neighbor, so interior is empty everywhere.
  const std::int64_t n = 8;
  std::vector<Edge> edges;
  for (std::int32_t u = 0; u < n; ++u) {
    for (std::int32_t v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  const Graph g(n, std::move(edges));
  const Partitioning part =
      Partitioning::build(g, 4, PartitionStrategy::VertexRange);
  for (const Shard& sh : part.shards()) {
    EXPECT_EQ(static_cast<std::int64_t>(sh.frontier.size()), sh.num_vertices());
    EXPECT_TRUE(sh.interior.empty());
    EXPECT_EQ(static_cast<int>(sh.neighbor_shards.size()), 3);
  }
}

TEST(Pipeline, IsolatedVerticesAreInterior) {
  // No edges at all: nothing can cross a shard boundary.
  const Graph g(12, std::vector<Edge>{});
  const Partitioning part =
      Partitioning::build(g, 4, PartitionStrategy::VertexRange);
  const PipelineSchedule sched(part);
  for (const Shard& sh : part.shards()) {
    EXPECT_TRUE(sh.frontier.empty());
    EXPECT_EQ(static_cast<std::int64_t>(sh.interior.size()), sh.num_vertices());
    EXPECT_TRUE(sh.neighbor_shards.empty());
    EXPECT_EQ(sched.init_pending(sh.id), 1);  // only its own full publish
  }
  EXPECT_EQ(part.total_frontier_vertices(), 0);
}

TEST(Pipeline, ScheduleMatchesNeighborTopology) {
  const Graph g = test_graph();
  const Partitioning part =
      Partitioning::build(g, 8, PartitionStrategy::DegreeBalanced);
  const PipelineSchedule sched(part);
  ASSERT_EQ(sched.num_shards(), 8);
  for (int s = 0; s < 8; ++s) {
    const Shard& sh = part.shard(s);
    EXPECT_EQ(sched.init_pending(s),
              static_cast<int>(sh.neighbor_shards.size()) + 1);
    EXPECT_EQ(sched.dependents(s), sh.neighbor_shards);
    for (std::int32_t t : sh.neighbor_shards) {
      // The dependency relation is symmetric (a cut edge is foreign to both
      // of its endpoint owners).
      const auto& back = part.shard(t).neighbor_shards;
      EXPECT_NE(std::find(back.begin(), back.end(), s), back.end())
          << "shard " << t << " missing back-edge to " << s;
    }
  }
}

// --- direct VM runs: ready-flag handoff and stash elision -------------------

struct Env {
  std::unordered_map<int, Tensor> tensors;
  std::unordered_map<int, Tensor> outs;
  std::unordered_map<int, IntTensor> auxes;

  VmBindings bindings() {
    VmBindings b;
    b.tensor = [this](int id) -> const Tensor& { return tensors.at(id); };
    b.aux = [this](int id) -> const IntTensor& { return auxes.at(id); };
    b.out = [this](int id) -> Tensor& { return outs.at(id); };
    b.out_aux = [this](int id) -> IntTensor& { return auxes[id]; };
    return b;
  }
};

EPInstr load(EPOp op, int dst, int tensor, std::int64_t w) {
  EPInstr i;
  i.op = op;
  i.dst = dst;
  i.tensor = tensor;
  i.width = w;
  return i;
}
EPInstr binop(EPOp op, int dst, int a, int b, std::int64_t w) {
  EPInstr i;
  i.op = op;
  i.dst = dst;
  i.a = a;
  i.b = b;
  i.width = w;
  return i;
}
EPInstr reduce(int a, int acc, std::int64_t w) {
  EPInstr i;
  i.op = EPOp::Reduce;
  i.a = a;
  i.acc = acc;
  i.width = w;
  return i;
}

/// Dst-major walk with a reduce-to-src Sum: every edge contributes through
/// the boundary combine — the most pipeline-dependent program shape.
/// `costly` adds arithmetic past the elision threshold so the per-edge
/// stash path (not recompute) carries the contribution.
EdgeProgram boundary_program(std::int64_t f, bool costly) {
  EdgeProgram ep;
  ep.mapping = WorkMapping::VertexBalanced;
  ep.dst_major = true;
  ep.phases.resize(1);
  if (costly) {
    // ((x_u + x_v) * x_u) - x_v: 3 arithmetic ops -> stash, not recompute.
    ep.phases[0].instrs = {load(EPOp::LoadU, 0, 0, f),
                           load(EPOp::LoadV, 1, 0, f),
                           binop(EPOp::Add, 2, 0, 1, f),
                           binop(EPOp::Mul, 3, 2, 0, f),
                           binop(EPOp::Sub, 4, 3, 1, f),
                           reduce(4, 0, f)};
    ep.num_regs = 5;
    ep.reg_width = {f, f, f, f, f};
  } else {
    // x_u + x_v: cheap enough that the combine recomputes it per edge.
    ep.phases[0].instrs = {load(EPOp::LoadU, 0, 0, f),
                           load(EPOp::LoadV, 1, 0, f),
                           binop(EPOp::Add, 2, 0, 1, f), reduce(2, 0, f)};
    ep.num_regs = 3;
    ep.reg_width = {f, f, f};
  }
  ep.vertex_outputs.push_back({1, static_cast<std::uint8_t>(ReduceFn::Sum), f,
                               0, /*reverse=*/true, false, false});
  return ep;
}

TEST(Pipeline, ReadyFlagStressBitIdentical) {
  // Repeated pipelined runs against a fixed unsharded reference: every
  // publish/combine interleaving must produce the same bits. (Single-core
  // hosts serialize the tasks; the CI TSan job runs this with real threads.)
  Rng rng(11);
  const Graph g = test_graph();
  const std::int64_t n = g.num_vertices(), f = 4;
  const Partitioning part =
      Partitioning::build(g, 8, PartitionStrategy::DegreeBalanced);
  const PipelineSchedule sched(part);
  for (const bool costly : {false, true}) {
    const EdgeProgram ep = boundary_program(f, costly);
    Env env;
    env.tensors.emplace(0, Tensor::randn(n, f, rng));
    env.outs.emplace(1, Tensor::zeros(n, f));
    run_edge_program(g, ep, env.bindings());
    const Tensor ref = env.outs.at(1).clone();
    for (int rep = 0; rep < 25; ++rep) {
      env.outs.at(1).fill(0.f);
      run_edge_program_sharded(g, part, ep, env.bindings(), nullptr, &sched);
      expect_bit_identical(ref, env.outs.at(1), "pipelined boundary sum");
    }
    // Barrier path off the same bindings agrees too.
    env.outs.at(1).fill(0.f);
    run_edge_program_sharded(g, part, ep, env.bindings(), nullptr, nullptr);
    expect_bit_identical(ref, env.outs.at(1), "barrier boundary sum");
  }
}

TEST(Pipeline, StashElisionSavesBytesAndStaysExact) {
  Rng rng(13);
  const Graph g = test_graph();
  const std::int64_t n = g.num_vertices(), f = 4;
  const EdgeProgram ep = boundary_program(f, /*costly=*/false);
  Env env;
  env.tensors.emplace(0, Tensor::randn(n, f, rng));
  env.outs.emplace(1, Tensor::zeros(n, f));
  CounterScope scope;
  run_edge_program(g, ep, env.bindings());
  const PerfCounters d = scope.delta();
  // The one boundary output is cheap -> elided: the |E| x f stash is never
  // allocated and its bytes are reported as saved.
  EXPECT_EQ(d.boundary_stash_bytes, 0u);
  EXPECT_EQ(d.boundary_stash_saved_bytes,
            static_cast<std::uint64_t>(g.num_edges()) * f * sizeof(float));

  // Recompute must reproduce the exact fold: out[u] = sum over outgoing
  // edges (u, v) in out-CSC order of x_u + x_v.
  Tensor expect = Tensor::zeros(n, f);
  for (std::int64_t u = 0; u < n; ++u) {
    float* row = expect.row(u);
    const float* xu = env.tensors.at(0).row(u);
    for (std::int64_t i = g.out_ptr()[u]; i < g.out_ptr()[u + 1]; ++i) {
      const float* xv = env.tensors.at(0).row(g.out_dst()[i]);
      for (std::int64_t j = 0; j < f; ++j) row[j] += xu[j] + xv[j];
    }
  }
  expect_bit_identical(expect, env.outs.at(1), "elided boundary sum");
}

TEST(Pipeline, CostlyBoundaryKeepsStash) {
  Rng rng(17);
  const Graph g = test_graph();
  const std::int64_t n = g.num_vertices(), f = 4;
  const EdgeProgram ep = boundary_program(f, /*costly=*/true);
  Env env;
  env.tensors.emplace(0, Tensor::randn(n, f, rng));
  env.outs.emplace(1, Tensor::zeros(n, f));
  CounterScope scope;
  run_edge_program(g, ep, env.bindings());
  const PerfCounters d = scope.delta();
  EXPECT_EQ(d.boundary_stash_bytes,
            static_cast<std::uint64_t>(g.num_edges()) * f * sizeof(float));
  EXPECT_EQ(d.boundary_stash_saved_bytes, 0u);
}

TEST(Pipeline, CountersChargeOnlyPipelinedRuns) {
  const Graph g = test_graph();
  const auto build = [](Rng& r) {
    GcnConfig cfg;
    cfg.in_dim = 6;
    cfg.hidden = {8};
    cfg.num_classes = 4;
    return build_gcn(cfg, r);
  };
  // The pipeline applies to interpreted programs; specialized cores run
  // their own per-shard loops. Force the interpreter so the counters fire.
  CounterScope on_scope;
  train_run(g, build, 4, 1, 6, 0, ours_no_specialize());
  const PerfCounters on = on_scope.delta();
  EXPECT_GT(on.interior_edges + on.frontier_edges, 0u);
  EXPECT_GT(on.walk_ns, 0u);

  CounterScope off_scope;
  train_run(g, build, 4, 1, 6, 0, without_pipeline(ours_no_specialize()));
  const PerfCounters off = off_scope.delta();
  // The schedule-split counters are the pipelined path's signature; the
  // barrier path reports walk/combine time but no interior/frontier split.
  EXPECT_EQ(off.interior_edges, 0u);
  EXPECT_EQ(off.frontier_edges, 0u);
  EXPECT_EQ(off.combine_overlap_ns, 0u);
  EXPECT_GT(off.walk_ns, 0u);
}

}  // namespace
}  // namespace triad
