// Gradient checking: every autodiff rule is validated against central finite
// differences of a scalar loss L = <seed, output> through the Executor.
#include <gtest/gtest.h>

#include <functional>

#include "engine/executor.h"
#include "graph/generators.h"
#include "ir/autodiff.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

/// Builds ir via `make` (returns output node), runs autodiff, then compares
/// every param gradient against finite differences.
void grad_check(
    const Graph& g,
    const std::function<int(IrGraph&, std::vector<int>&)>& make,
    float tol = 2e-2f, unsigned seed = 7) {
  IrGraph ir;
  std::vector<int> params;
  const int out = make(ir, params);
  ir.mark_output(out);
  BackwardResult bwd = build_backward(ir, out);
  for (auto& [p, gr] : bwd.param_grads) ir.mark_output(gr);

  Rng rng(seed);
  // Bind inputs/params with random data.
  std::vector<std::pair<int, Tensor>> bound;
  Executor ex(g, ir);
  for (const Node& n : ir.nodes()) {
    if (n.kind == OpKind::Param ||
        (n.kind == OpKind::Input && n.id != bwd.seed_grad)) {
      const std::int64_t rows = n.space == Space::Vertex ? g.num_vertices()
                                : n.space == Space::Edge ? g.num_edges()
                                                         : n.rows;
      Tensor t = Tensor::randn(rows, n.cols, rng, 0.7f);
      ex.bind(n.id, t);
      bound.emplace_back(n.id, t);
    }
  }
  const Node& on = ir.node(out);
  const std::int64_t orows =
      on.space == Space::Vertex ? g.num_vertices() : g.num_edges();
  Tensor seed_t = Tensor::randn(orows, on.cols, rng, 1.f);
  ex.bind(bwd.seed_grad, seed_t);

  auto loss = [&]() {
    ex.run_forward();
    const Tensor& o = ex.result(out);
    double l = 0;
    for (std::int64_t i = 0; i < o.numel(); ++i) {
      l += static_cast<double>(seed_t.data()[i]) * o.data()[i];
    }
    return l;
  };

  ex.run();
  std::vector<Tensor> grads;
  for (auto& [p, gr] : bwd.param_grads) grads.push_back(ex.result(gr).clone());

  const float eps = 1e-3f;
  for (std::size_t pi = 0; pi < bwd.param_grads.size(); ++pi) {
    const int pid = bwd.param_grads[pi].first;
    Tensor* pt = nullptr;
    for (auto& [id, t] : bound) {
      if (id == pid) pt = &t;
    }
    ASSERT_NE(pt, nullptr);
    // Probe a handful of entries.
    const std::int64_t n = pt->numel();
    for (std::int64_t i = 0; i < n; i += std::max<std::int64_t>(1, n / 7)) {
      float* v = pt->data() + i;
      const float save = *v;
      *v = save + eps;
      const double lp = loss();
      *v = save - eps;
      const double lm = loss();
      *v = save;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grads[pi].data()[i], num, tol + 0.02 * std::fabs(num))
          << "param node " << pid << " entry " << i;
    }
  }
}

Graph small_graph() {
  Rng rng(3);
  return gen::erdos_renyi(10, 40, rng);
}

TEST(Autodiff, LinearBiasRelu) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 3, "x");
    const int w = ir.param(3, 4, "w");
    const int b = ir.param(1, 4, "b");
    return ir.apply_unary(ApplyFn::ReLU, ir.bias(ir.linear(x, w), b));
  });
}

TEST(Autodiff, ScatterCopyUGather) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 3, "x");
    const int w = ir.param(3, 3, "w");
    const int h = ir.linear(x, w);
    const int e = ir.scatter(ScatterFn::CopyU, h, -1);
    return ir.gather(ReduceFn::Sum, e);
  });
}

TEST(Autodiff, ScatterAddSubUV) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int wa = ir.param(2, 3, "wa");
    const int wb = ir.param(2, 3, "wb");
    const int a = ir.linear(x, wa);
    const int b = ir.linear(x, wb);
    const int e1 = ir.scatter(ScatterFn::AddUV, a, b);
    const int e2 = ir.scatter(ScatterFn::SubUV, a, b);
    const int s = ir.apply_binary(ApplyFn::Mul, e1, e2);
    return ir.gather(ReduceFn::Sum, s);
  });
}

TEST(Autodiff, ScatterMulUV) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 2, "w");
    const int h = ir.linear(x, w);
    const int e = ir.scatter(ScatterFn::MulUV, h, h);
    return ir.gather(ReduceFn::Sum, e);
  });
}

TEST(Autodiff, ScatterConcatLinear) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 2, "w");
    const int a = ir.param(4, 1, "a");
    const int h = ir.linear(x, w);
    const int cat = ir.scatter(ScatterFn::ConcatUV, h, h);
    const int s = ir.linear(cat, a);
    return ir.gather(ReduceFn::Sum, s);
  });
}

TEST(Autodiff, GatherMax) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 3, "x");
    const int w = ir.param(3, 3, "w");
    const int h = ir.linear(x, w);
    const int e = ir.scatter(ScatterFn::SubUV, h, h);
    return ir.gather(ReduceFn::Max, e);
  });
}

TEST(Autodiff, GatherMean) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 3, "x");
    const int w = ir.param(3, 2, "w");
    const int h = ir.linear(x, w);
    const int e = ir.scatter(ScatterFn::CopyU, h, -1);
    return ir.gather(ReduceFn::Mean, e);
  });
}

TEST(Autodiff, ActivationChain) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 3, "x");
    const int w = ir.param(3, 3, "w");
    int h = ir.linear(x, w);
    h = ir.apply_unary(ApplyFn::LeakyReLU, h, 0.1f);
    h = ir.apply_unary(ApplyFn::ELU, h, 1.f);
    h = ir.apply_unary(ApplyFn::Scale, h, 0.5f);
    h = ir.apply_unary(ApplyFn::Neg, h);
    return h;
  });
}

TEST(Autodiff, ExpDivSoftmaxPieces) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 1, "w");
    const int h = ir.linear(x, w);
    const int s = ir.scatter(ScatterFn::AddUV, h, h);
    const int mx = ir.gather(ReduceFn::Max, s);
    const int mxe = ir.scatter(ScatterFn::CopyV, mx, -1);
    const int sh = ir.apply_binary(ApplyFn::Sub, s, mxe);
    const int ex = ir.apply_unary(ApplyFn::Exp, sh);
    const int dn = ir.gather(ReduceFn::Sum, ex);
    const int dne = ir.scatter(ScatterFn::CopyV, dn, -1);
    const int sm = ir.apply_binary(ApplyFn::Div, ex, dne);
    return ir.gather(ReduceFn::Sum, sm);
  }, /*tol=*/3e-2f);
}

TEST(Autodiff, BuiltinEdgeSoftmax) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 1, "w");
    const int h = ir.linear(x, w);
    const int s = ir.scatter(ScatterFn::AddUV, h, h);
    const int sm = ir.special(SpecialFn::EdgeSoftmax, {s}, 0, 1, Space::Edge);
    return ir.gather(ReduceFn::Sum, sm);
  }, /*tol=*/3e-2f);
}

TEST(Autodiff, MulHeadDotHead) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 6, "w");   // 2 heads x 3
    const int ws = ir.param(2, 2, "ws");
    const int h = ir.linear(x, w);
    const int sc = ir.linear(x, ws);
    const int feat = ir.scatter(ScatterFn::CopyU, h, -1);
    const int s = ir.scatter(ScatterFn::AddUV, sc, sc);
    const int weighted = ir.apply_binary(ApplyFn::MulHead, feat, s, "", 2);
    return ir.gather(ReduceFn::Sum, weighted);
  });
}

TEST(Autodiff, GaussianParams) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int pseudo = ir.input(Space::Edge, 0, 2, "pseudo");
    const int mu = ir.param(3, 2, "mu");
    const int sigma = ir.param(3, 2, "sigma");
    const int w = ir.special(SpecialFn::Gaussian, {pseudo, mu, sigma}, 0, 3,
                             Space::Edge);
    return ir.gather(ReduceFn::Sum, w);
  }, /*tol=*/3e-2f);
}

TEST(Autodiff, HeadSumChain) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 6, "w");
    const int h = ir.linear(x, w);
    return ir.apply_head(ApplyFn::HeadSum, h, 3, 1.f / 3.f);
  });
}

TEST(Autodiff, SharedWeightRowWindows) {
  // The reorg trick: two linears reading disjoint row windows of one param
  // must accumulate gradient into the same tensor.
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int a = ir.param(4, 1, "a");
    const int lo = ir.linear(x, a, 0, 2);
    const int hi = ir.linear(x, a, 2, 4);
    const int e = ir.scatter(ScatterFn::AddUV, lo, hi);
    return ir.gather(ReduceFn::Sum, e);
  });
}

TEST(Autodiff, GradAccumulationAcrossConsumers) {
  grad_check(small_graph(), [](IrGraph& ir, std::vector<int>&) {
    const int x = ir.input(Space::Vertex, 0, 2, "x");
    const int w = ir.param(2, 2, "w");
    const int h = ir.linear(x, w);
    // h used by three consumers.
    const int e1 = ir.scatter(ScatterFn::CopyU, h, -1);
    const int e2 = ir.scatter(ScatterFn::CopyV, h, -1);
    const int e3 = ir.scatter(ScatterFn::AddUV, h, h);
    const int s = ir.apply_binary(ApplyFn::Add, e1, e2);
    const int t = ir.apply_binary(ApplyFn::Add, s, e3);
    return ir.gather(ReduceFn::Sum, t);
  });
}

TEST(Autodiff, RejectsFusedGraphs) {
  IrGraph ir;
  Node f;
  f.kind = OpKind::Fused;
  f.program = 0;
  ir.programs.emplace_back();
  const int id = ir.append(std::move(f));
  EXPECT_THROW(build_backward(ir, id), Error);
}

TEST(Autodiff, SeedShapeMatchesOutput) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 5, "x");
  const int w = ir.param(5, 3, "w");
  const int y = ir.linear(x, w);
  BackwardResult bwd = build_backward(ir, y);
  EXPECT_EQ(ir.node(bwd.seed_grad).cols, 3);
  EXPECT_EQ(ir.node(bwd.seed_grad).space, Space::Vertex);
  EXPECT_EQ(ir.backward_start, bwd.seed_grad);
}

}  // namespace
}  // namespace triad
