// Unit tests for src/support: macros, RNG, counters, parallel primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "support/counters.h"
#include "support/macros.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/timer.h"

namespace triad {
namespace {

TEST(Macros, CheckThrowsWithMessage) {
  try {
    TRIAD_CHECK(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Macros, ComparisonsPassAndFail) {
  EXPECT_NO_THROW(TRIAD_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(TRIAD_CHECK_LT(1, 2));
  EXPECT_NO_THROW(TRIAD_CHECK_GE(2, 2));
  EXPECT_THROW(TRIAD_CHECK_EQ(3, 4), Error);
  EXPECT_THROW(TRIAD_CHECK_GT(1, 1), Error);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
  for (auto v : seen) EXPECT_LT(v, 10u);
}

TEST(Rng, NormalMoments) {
  Rng r(42);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Counters, DeltaAndAccumulate) {
  PerfCounters& c = global_counters();
  const PerfCounters before = c;
  CounterScope scope;
  c.dram_read_bytes += 100;
  c.flops += 5;
  const PerfCounters d = scope.delta();
  EXPECT_EQ(d.dram_read_bytes, 100u);
  EXPECT_EQ(d.flops, 5u);
  EXPECT_EQ(d.io_bytes(), 100u);
  c = before;
}

TEST(Counters, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(std::uint64_t{3} << 30), "3.00 GiB");
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunksPartitionRange) {
  std::atomic<std::int64_t> total{0};
  parallel_for_chunks(5, 1005, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo);
  }, 64);
  EXPECT_EQ(total.load(), 1000);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(3, 3, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, AtomicAddAccumulates) {
  float x = 0.f;
  parallel_for(0, 1000, [&](std::int64_t) { atomic_add(&x, 0.5f); }, 8);
  EXPECT_FLOAT_EQ(x, 500.f);
}

TEST(Parallel, AtomicMaxKeepsMaximum) {
  float x = -1e30f;
  parallel_for(0, 100, [&](std::int64_t i) {
    atomic_max(&x, static_cast<float>(i));
  }, 4);
  EXPECT_FLOAT_EQ(x, 99.f);
}

TEST(Timer, MeasuresElapsedAndResets) {
  Timer t;
  // Busy-wait past the clock resolution.
  while (t.seconds() <= 0.0) {
  }
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.reset();
  EXPECT_LE(t.seconds(), first + 1.0);
}

}  // namespace
}  // namespace triad
