// Tests for strategy presets and the compile_model pipeline plumbing.
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "models/models.h"
#include "support/rng.h"

namespace triad {
namespace {

TEST(Strategy, PresetFlagsMatchPaperBaselines) {
  const Strategy dgl = dgl_like();
  EXPECT_TRUE(dgl.prereorganized_gat);  // DGL's GATConv is hand-reorganized
  EXPECT_TRUE(dgl.builtin_softmax);
  EXPECT_FALSE(dgl.reorg);
  EXPECT_EQ(dgl.fusion, FusionMode::None);
  EXPECT_FALSE(dgl.recompute);

  const Strategy fg = fusegnn_like();
  EXPECT_EQ(fg.fusion, FusionMode::EdgeOnly);  // edge-centric fusion only
  EXPECT_FALSE(fg.reorg);
  EXPECT_FALSE(fg.recompute);

  const Strategy us = ours();
  EXPECT_TRUE(us.reorg);
  EXPECT_EQ(us.fusion, FusionMode::Unified);
  EXPECT_TRUE(us.recompute);
  EXPECT_FALSE(us.builtin_softmax);  // expanded chain feeds the fusion pass

  EXPECT_FALSE(ours_no_fusion().recompute)
      << "recompute without fusion would re-materialize O(|E|)";
}

TEST(Strategy, CompiledGraphShrinksKernelCount) {
  // Unified fusion must reduce node count relative to the naive pipeline.
  auto nodes_of = [](const Strategy& s) {
    Rng rng(3);
    GatConfig cfg;
    cfg.in_dim = 8;
    cfg.hidden = 8;
    cfg.layers = 1;
    cfg.num_classes = 3;
    cfg.prereorganized = s.prereorganized_gat;
    cfg.builtin_softmax = s.builtin_softmax;
    Compiled c = compile_model(build_gat(cfg, rng), s, true);
    int execustable = 0;
    for (const Node& n : c.ir.nodes()) {
      execustable += n.kind != OpKind::Input && n.kind != OpKind::Param &&
                     n.kind != OpKind::FusedOut;
    }
    return execustable;
  };
  EXPECT_LT(nodes_of(ours()), nodes_of(naive()));
}

TEST(Strategy, DglGatUsesBuiltinSoftmaxNode) {
  Rng rng(5);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 3;
  const Strategy s = dgl_like();
  cfg.prereorganized = s.prereorganized_gat;
  cfg.builtin_softmax = s.builtin_softmax;
  Compiled c = compile_model(build_gat(cfg, rng), s, true);
  int builtin = 0;
  for (const Node& n : c.ir.nodes()) {
    builtin += n.kind == OpKind::Special &&
               (n.spfn == SpecialFn::EdgeSoftmax ||
                n.spfn == SpecialFn::EdgeSoftmaxGrad);
  }
  EXPECT_EQ(builtin, 2);  // forward + backward
  EXPECT_TRUE(c.ir.programs.empty());  // no pass-made fusion in DGL mode
}

TEST(Strategy, OursEliminatesBuiltinSoftmax) {
  Rng rng(6);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_gat(cfg, rng), ours(), true);
  for (const Node& n : c.ir.nodes()) {
    EXPECT_FALSE(n.kind == OpKind::Special && n.spfn == SpecialFn::EdgeSoftmax);
  }
  EXPECT_GE(c.ir.programs.size(), 2u);  // fwd + bwd fused kernels
}

TEST(Strategy, HandleRemapSurvivesAllPasses) {
  Rng rng(7);
  MoNetConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden = 8;
  cfg.kernels = 2;
  cfg.pseudo_dim = 2;
  cfg.num_classes = 3;
  Compiled c = compile_model(build_monet(cfg, rng), ours(), true);
  // Every handle must point at the right node kind after three rewrites.
  EXPECT_EQ(c.ir.node(c.features).kind, OpKind::Input);
  EXPECT_EQ(c.ir.node(c.pseudo).kind, OpKind::Input);
  EXPECT_EQ(c.ir.node(c.seed).kind, OpKind::Input);
  for (int p : c.params) EXPECT_EQ(c.ir.node(p).kind, OpKind::Param);
  ASSERT_EQ(c.params.size(), c.param_grads.size());
  for (std::size_t i = 0; i < c.params.size(); ++i) {
    EXPECT_EQ(c.ir.node(c.param_grads[i]).rows, c.ir.node(c.params[i]).rows);
    EXPECT_EQ(c.ir.node(c.param_grads[i]).cols, c.ir.node(c.params[i]).cols);
  }
}

TEST(Strategy, EdgeOnlyFusionNeverFusesGathers) {
  Rng rng(8);
  EdgeConvConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = {8};
  cfg.num_classes = 3;
  Compiled c = compile_model(build_edgeconv(cfg, rng), fusegnn_like(), true);
  for (const EdgeProgram& ep : c.ir.programs) {
    EXPECT_TRUE(ep.vertex_outputs.empty())
        << "fuseGNN-like fusion produced a fused reduction";
  }
}

TEST(Strategy, InferenceCompileHasNoBackward) {
  Rng rng(9);
  GcnConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = {4};
  cfg.num_classes = 2;
  Compiled c = compile_model(build_gcn(cfg, rng), ours(), false);
  EXPECT_EQ(c.seed, -1);
  EXPECT_TRUE(c.param_grads.empty());
  EXPECT_LT(c.ir.backward_start, 0);
}

}  // namespace
}  // namespace triad
