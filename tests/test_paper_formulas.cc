// Asserts the paper's analytic cost claims against the engine's counters.
//
// Section 4: GAT attention-score computation costs 6|E|f + |E| naive and
//            4|V|f + 2|E| after reorganization.
// Section 5: fused GAT graph ops move strictly less DRAM than unfused
//            (paper: |V|hf + 7|E|h + 3|E|hf  ->  |V|hf + 5|E|h + 2|E|hf).
// Section 1 motivation: redundant ops dominate EdgeConv (92.4 % claim) and
//            stash dominates GAT training memory (91.9 % claim) — we assert
//            the dominance, not the exact percentage (graph-dependent).
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "ir/passes/reorg.h"
#include "models/models.h"
#include "models/trainer.h"
#include "support/counters.h"
#include "support/rng.h"

namespace triad {
namespace {

/// Sum of Linear FLOPs when computing attention scores (naive vs reorg).
TEST(PaperFormulas, Section4GatScoreFlopRatio) {
  Rng rng(1);
  Graph g = gen::erdos_renyi(64, 1024, rng);  // |E| = 16 |V|
  const std::int64_t f = 32;

  auto score_flops = [&](bool reorganized) {
    IrGraph ir;
    const int ht = ir.input(Space::Vertex, 0, f, "ht");
    const int a = ir.param(2 * f, 1, "a");
    int s;
    if (!reorganized) {
      const int cat = ir.scatter(ScatterFn::ConcatUV, ht, ht);
      s = ir.linear(cat, a);
    } else {
      const int al = ir.linear(ht, a, 0, f);
      const int ar = ir.linear(ht, a, f, 2 * f);
      s = ir.scatter(ScatterFn::AddUV, al, ar);
    }
    const int lr = ir.apply_unary(ApplyFn::LeakyReLU, s, 0.2f);
    ir.mark_output(lr);
    Executor ex(g, ir);
    Rng local(2);
    ex.bind(ht, Tensor::randn(64, f, local));
    ex.bind(a, Tensor::randn(2 * f, 1, local));
    CounterScope scope;
    ex.run();
    return scope.delta().flops;
  };

  const auto naive_flops = static_cast<double>(score_flops(false));
  const auto reorg_flops = static_cast<double>(score_flops(true));
  // Paper model: naive ≈ 4|E|f mults (+adds) vs reorg ≈ 4|V|f. With
  // |E|/|V| = 16 the ratio should approach that factor; allow loose bounds
  // because the scatter/activation terms are graph-sized in both.
  const double ratio = naive_flops / reorg_flops;
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 40.0);
}

TEST(PaperFormulas, Section4ExactLinearCost) {
  // The Linear flops themselves follow 2·rows·k·n exactly.
  Rng rng(3);
  Graph g = gen::erdos_renyi(10, 50, rng);
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 8, "x");
  const int w = ir.param(8, 4, "w");
  const int y = ir.linear(x, w);
  ir.mark_output(y);
  Executor ex(g, ir);
  Rng local(4);
  ex.bind(x, Tensor::randn(10, 8, local));
  ex.bind(w, Tensor::randn(8, 4, local));
  CounterScope scope;
  ex.run();
  EXPECT_EQ(scope.delta().flops, 2ull * 10 * 8 * 4);
}

TEST(PaperFormulas, Section5FusedIoStrictlyLess) {
  Rng rng(5);
  Graph g = gen::erdos_renyi(128, 2048, rng);
  auto graph_op_io = [&](const Strategy& s) {
    Rng mrng(99);
    GatConfig cfg;
    cfg.in_dim = 16;
    cfg.hidden = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.num_classes = 4;
    cfg.prereorganized = true;  // isolate fusion: same op costs otherwise
    cfg.builtin_softmax = false;
    ModelGraph m = build_gat(cfg, mrng);
    Compiled c = compile_model(std::move(m), s, /*training=*/false);
    Executor ex(g, c.ir);
    Rng local(6);
    ex.bind(c.features, Tensor::randn(128, 16, local));
    for (std::size_t i = 0; i < c.params.size(); ++i) {
      ex.bind(c.params[i], c.init[i].clone());
    }
    CounterScope scope;
    ex.run();
    return scope.delta();
  };
  Strategy fused = ours();
  fused.reorg = false;
  fused.recompute = false;
  const PerfCounters unfused = graph_op_io(naive());
  const PerfCounters with_fusion = graph_op_io(fused);
  EXPECT_LT(with_fusion.io_bytes(), unfused.io_bytes());
  EXPECT_LT(with_fusion.kernel_launches, unfused.kernel_launches);
  EXPECT_GT(with_fusion.onchip_bytes, unfused.onchip_bytes);
}

TEST(PaperFormulas, Section1StashDominatesGatTrainingMemory) {
  // "Intermediate data consume 91.9% of total memory" (GAT). On a dense
  // enough graph the stash share under the stash-everything baseline must
  // dominate weights+gradients by a wide margin.
  Rng rng(7);
  Graph g = gen::erdos_renyi(64, 4096, rng);  // avg degree 64
  Rng mrng(8);
  GatConfig cfg;
  cfg.in_dim = 16;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.num_classes = 4;
  cfg.prereorganized = true;
  cfg.builtin_softmax = true;
  Compiled c = compile_model(build_gat(cfg, mrng), dgl_like(), true);
  MemoryPool pool;
  Rng local(9);
  Trainer t(std::move(c), g,
            Tensor::randn(64, 16, local, 1.f, MemTag::kInput, &pool), Tensor{},
            &pool);
  IntTensor labels(64, 1);
  for (int v = 0; v < 64; ++v) labels.at(v, 0) = v % 4;
  t.train_step(labels, 0.01f);
  // "Intermediate data" in the paper's measurement = everything that is not
  // model parameters: stashed forward tensors, transient activations, and
  // gradient tensors. Their share of the non-input peak must dominate.
  const double stash = static_cast<double>(pool.peak_breakdown(MemTag::kStash));
  const double activ =
      static_cast<double>(pool.peak_breakdown(MemTag::kActivations));
  const double grads =
      static_cast<double>(pool.peak_breakdown(MemTag::kGradient));
  const double total = static_cast<double>(pool.peak_bytes()) -
                       static_cast<double>(pool.peak_breakdown(MemTag::kInput));
  const double share = (stash + activ + grads) / total;
  EXPECT_GT(share, 0.9) << "intermediate share " << share;
  // And the stash alone dominates the weights by a wide margin.
  const double weights =
      static_cast<double>(pool.peak_breakdown(MemTag::kWeights));
  EXPECT_GT(stash, 5 * weights);
}

TEST(PaperFormulas, Section1RedundantOpsDominateEdgeConv) {
  // "Redundant computation accounts for 92.4% of operators" (EdgeConv): the
  // FLOPs removed by reorganization dominate the naive total when
  // |E| >> |V| (k-NN with k=20 gives exactly that regime).
  Rng rng(10);
  Graph g = gen::k_in_regular(128, 20, rng);
  auto flops_of = [&](const Strategy& s) {
    Rng mrng(11);
    EdgeConvConfig cfg;
    cfg.in_dim = 16;
    cfg.hidden = {16};
    cfg.num_classes = 4;
    Compiled c = compile_model(build_edgeconv(cfg, mrng), s, false);
    Executor ex(g, c.ir);
    Rng local(12);
    ex.bind(c.features, Tensor::randn(128, 16, local));
    for (std::size_t i = 0; i < c.params.size(); ++i) {
      ex.bind(c.params[i], c.init[i].clone());
    }
    CounterScope scope;
    ex.run();
    return static_cast<double>(scope.delta().flops);
  };
  Strategy reorg_only = naive();
  reorg_only.reorg = true;
  const double naive_f = flops_of(naive());
  const double reorg_f = flops_of(reorg_only);
  // Removed share = redundant share of the Θ projection. With k=20 the
  // paper-level ~90 % regime appears once the classifier is discounted;
  // assert strong dominance.
  EXPECT_GT((naive_f - reorg_f) / naive_f, 0.55)
      << "redundant share " << (naive_f - reorg_f) / naive_f;
}

TEST(PaperFormulas, Section6RecomputeOverheadSmall) {
  // "Overhead by recomputation is <10%": recompute adds FLOPs but they are
  // lightweight; total FLOPs must grow by a small factor only.
  Rng rng(13);
  Graph g = gen::erdos_renyi(64, 1024, rng);
  auto flops_of = [&](const Strategy& s) {
    Rng mrng(14);
    GatConfig cfg;
    cfg.in_dim = 16;
    cfg.hidden = 16;
    cfg.layers = 1;
    cfg.num_classes = 4;
    cfg.prereorganized = s.prereorganized_gat;
    cfg.builtin_softmax = s.builtin_softmax;
    Compiled c = compile_model(build_gat(cfg, mrng), s, true);
    MemoryPool pool;
    Rng local(15);
    Trainer t(std::move(c), g,
              Tensor::randn(64, 16, local, 1.f, MemTag::kInput, &pool), Tensor{},
              &pool);
    IntTensor labels(64, 1);
    for (int v = 0; v < 64; ++v) labels.at(v, 0) = v % 4;
    return static_cast<double>(t.train_step(labels, 0.f).counters.flops);
  };
  const double stash_flops = flops_of(ours_fusion_stash());
  const double recompute_flops = flops_of(ours());
  EXPECT_LT(recompute_flops / stash_flops, 1.35)
      << "recompute flop overhead " << recompute_flops / stash_flops;
}

}  // namespace
}  // namespace triad
