// Tests for propagation-postponed operator reorganization (Section 4).
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "graph/generators.h"
#include "ir/passes/reorg.h"
#include "support/counters.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

Graph test_graph() {
  Rng rng(13);
  return gen::erdos_renyi(12, 60, rng);
}

/// Runs `ir` and its reorganized twin with identical bindings and compares
/// outputs; returns (flops_before, flops_after).
std::pair<std::uint64_t, std::uint64_t> check_equivalent(const Graph& g,
                                                         IrGraph ir,
                                                         int rewrites_expected) {
  ReorgStats stats;
  IrGraph opt = reorg_pass(ir, &stats);
  EXPECT_EQ(stats.rewrites, rewrites_expected);

  Rng rng(99);
  std::uint64_t flops[2];
  Tensor outs[2];
  const IrGraph* graphs[2] = {&ir, &opt};
  for (int i = 0; i < 2; ++i) {
    Executor ex(g, *graphs[i]);
    Rng local(99);  // identical bindings for both
    for (const Node& n : graphs[i]->nodes()) {
      if (n.kind == OpKind::Input || n.kind == OpKind::Param) {
        const std::int64_t rows = n.space == Space::Vertex ? g.num_vertices()
                                  : n.space == Space::Edge ? g.num_edges()
                                                           : n.rows;
        ex.bind(n.id, Tensor::randn(rows, n.cols, local));
      }
    }
    CounterScope scope;
    ex.run();
    flops[i] = scope.delta().flops;
    outs[i] = ex.result(graphs[i]->outputs[0]).clone();
  }
  EXPECT_LT(ops::max_abs_diff(outs[0], outs[1]), 1e-3f)
      << "reorg changed the semantics";
  (void)rng;
  return {flops[0], flops[1]};
}

TEST(Reorg, SubUVLinearRewritten) {
  // EdgeConv pattern: Linear(u_sub_v(h)) -> u_sub_v(Linear(h)).
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 8, "x");
  const int w = ir.param(8, 16, "theta");
  const int e = ir.scatter(ScatterFn::SubUV, x, x);
  const int p = ir.linear(e, w);
  const int out = ir.gather(ReduceFn::Sum, p);
  ir.mark_output(out);
  const auto [before, after] = check_equivalent(test_graph(), std::move(ir), 1);
  // |E| = 60 > |V| = 12, so the expensive Linear flops must drop.
  EXPECT_LT(after, before);
}

TEST(Reorg, ConcatLinearSplitsWeight) {
  // GAT pattern: Linear(u_concat_v(h,h), a) -> u_add_v(Linear_l, Linear_r).
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int a = ir.param(8, 2, "a");
  const int cat = ir.scatter(ScatterFn::ConcatUV, x, x);
  const int s = ir.linear(cat, a);
  const int out = ir.gather(ReduceFn::Sum, s);
  ir.mark_output(out);
  const auto [before, after] = check_equivalent(test_graph(), std::move(ir), 1);
  EXPECT_LT(after, before);
}

TEST(Reorg, CopyULinearCommutes) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 6, "x");
  const int w = ir.param(6, 6, "w");
  const int e = ir.scatter(ScatterFn::CopyU, x, -1);
  const int p = ir.linear(e, w);
  const int out = ir.gather(ReduceFn::Sum, p);
  ir.mark_output(out);
  check_equivalent(test_graph(), std::move(ir), 1);
}

TEST(Reorg, AddUVDifferentOperands) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int y = ir.input(Space::Vertex, 0, 4, "y");
  const int w = ir.param(4, 4, "w");
  const int e = ir.scatter(ScatterFn::AddUV, x, y);
  const int p = ir.linear(e, w);
  const int out = ir.gather(ReduceFn::Sum, p);
  ir.mark_output(out);
  // Two distinct operand tensors -> two Linears, still one rewrite.
  check_equivalent(test_graph(), std::move(ir), 1);
}

TEST(Reorg, MulUVNotRewritten) {
  // Linear does not distribute over elementwise product.
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int w = ir.param(4, 4, "w");
  const int e = ir.scatter(ScatterFn::MulUV, x, x);
  const int p = ir.linear(e, w);
  const int out = ir.gather(ReduceFn::Sum, p);
  ir.mark_output(out);
  check_equivalent(test_graph(), std::move(ir), 0);
}

TEST(Reorg, MultiConsumerScatterNotRewritten) {
  // The scatter output is also consumed elsewhere -> must stay materialized.
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int w = ir.param(4, 4, "w");
  const int e = ir.scatter(ScatterFn::SubUV, x, x);
  const int p = ir.linear(e, w);
  const int other = ir.apply_unary(ApplyFn::ReLU, e);
  const int s = ir.gather(ReduceFn::Sum, p);
  const int t = ir.gather(ReduceFn::Sum, other);
  const int out = ir.apply_binary(ApplyFn::Add, s, t);
  ir.mark_output(out);
  check_equivalent(test_graph(), std::move(ir), 0);
}

TEST(Reorg, LightweightApplyAfterScatterUntouched) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int e = ir.scatter(ScatterFn::AddUV, x, x);
  const int r = ir.apply_unary(ApplyFn::ReLU, e);
  const int out = ir.gather(ReduceFn::Sum, r);
  ir.mark_output(out);
  check_equivalent(test_graph(), std::move(ir), 0);
}

TEST(Reorg, RunsBeforeAutodiffOnly) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  ir.mark_output(x);
  ir.backward_start = 0;
  EXPECT_THROW(reorg_pass(ir), Error);
}

TEST(Reorg, ChainedLayersAllRewritten) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  int h = x;
  for (int l = 0; l < 3; ++l) {
    const int w = ir.param(4, 4, "w" + std::to_string(l));
    const int e = ir.scatter(ScatterFn::SubUV, h, h);
    const int p = ir.linear(e, w);
    h = ir.gather(ReduceFn::Max, p);
  }
  ir.mark_output(h);
  check_equivalent(test_graph(), std::move(ir), 3);
}

}  // namespace
}  // namespace triad
