// Tests for the compile-once/run-many split: ExecutionPlan precomputation,
// plan reuse across epochs (bit-identical to per-epoch recompilation, with
// compilation charged exactly once), concurrent PlanRunners sharing one
// plan, and the PlanCache.
#include <gtest/gtest.h>

#include <thread>

#include "baselines/plan_cache.h"
#include "baselines/strategy.h"
#include "engine/plan.h"
#include "graph/generators.h"
#include "models/models.h"
#include "models/trainer.h"
#include "support/counters.h"
#include "tensor/ops.h"

namespace triad {
namespace {

// Small enough that every kernel loop stays under the parallel_for grain:
// runs are serial and therefore bit-reproducible.
Graph small_graph() {
  Rng rng(17);
  return gen::k_in_regular(64, 4, rng);
}

GcnConfig small_gcn() {
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 4;
  return cfg;
}

ModelGraph build_small_gcn() {
  Rng mrng(7);  // fixed seed: every build yields identical initial weights
  return build_gcn(small_gcn(), mrng);
}

Tensor make_features(const Graph& g, MemoryPool* pool) {
  Rng rng(3);
  return Tensor::randn(g.num_vertices(), 8, rng, 1.f, MemTag::kInput, pool);
}

IntTensor make_labels(const Graph& g) {
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  return labels;
}

TEST(ExecutionPlan, PrecomputesScheduleAndFreePoints) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int a = ir.apply_unary(ApplyFn::ReLU, x);
  const int b = ir.apply_unary(ApplyFn::Neg, a);
  const int c = ir.apply_unary(ApplyFn::ReLU, b);
  ir.mark_output(c);
  ExecutionPlan plan = ExecutionPlan::compile(ir, 5, 0);

  EXPECT_EQ(plan.size(), 4);
  EXPECT_EQ(plan.forward_end(), 4);  // inference: no backward boundary
  EXPECT_EQ(plan.step(a).rows, 5);
  EXPECT_TRUE(plan.is_output(c));
  // `a` dies right after `b` consumes it; the bound input and the output
  // never appear in a free list.
  ASSERT_EQ(plan.step(b).free_after.size(), 1u);
  EXPECT_EQ(plan.step(b).free_after[0], a);
  for (int id = 0; id < plan.size(); ++id) {
    for (int f : plan.step(id).free_after) {
      EXPECT_NE(f, x);
      EXPECT_NE(f, c);
    }
  }
  // Peak estimate: input persists, at most two activations live at once.
  EXPECT_EQ(plan.persistent_bytes(), 5u * 4u * 4u);
  EXPECT_LE(plan.estimated_peak_bytes(), plan.persistent_bytes() + 2u * 5u * 4u * 4u);
}

TEST(ExecutionPlan, RunnerRejectsMismatchedGraph) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 2, "x");
  ir.mark_output(x);
  auto plan = ExecutionPlan::compile_shared(ir, 3, 3);
  Graph other(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_THROW(PlanRunner(other, plan), Error);
}

// The acceptance criterion of the refactor: one compiled plan, many epochs,
// results bit-identical to recompiling from scratch before every epoch —
// and zero compile-phase work (passes or plan builds) inside the epoch loop.
TEST(PlanReuse, EpochsBitIdenticalToPerEpochRecompilation) {
  const Graph g = small_graph();
  const IntTensor labels = make_labels(g);
  constexpr int kEpochs = 4;
  constexpr float kLr = 0.05f;

  // Compile once.
  auto shared = std::make_shared<const Compiled>(
      compile_model(build_small_gcn(), ours(), /*training=*/true, g));
  ASSERT_NE(shared->plan, nullptr);

  MemoryPool pool;
  Trainer reuse(shared, g, make_features(g, &pool), Tensor{}, &pool);
  std::vector<float> reuse_loss;
  CounterScope epochs_scope;
  for (int e = 0; e < kEpochs; ++e) {
    reuse_loss.push_back(reuse.train_step(labels, kLr).loss);
  }
  // No pass or plan (liveness/schedule) analysis ran inside the epoch loop.
  EXPECT_EQ(epochs_scope.delta().ir_passes, 0u);
  EXPECT_EQ(epochs_scope.delta().plan_compiles, 0u);
  EXPECT_EQ(epochs_scope.delta().compile_events(), 0u);
  const Tensor reuse_logits = reuse.logits().clone();

  // Baseline: recompile the model from scratch, then train to epoch e.
  // Trajectories must coincide bitwise at every epoch.
  for (int e = 0; e < kEpochs; ++e) {
    MemoryPool fresh_pool;
    Trainer fresh(compile_model(build_small_gcn(), ours(), true, g), g,
                  make_features(g, &fresh_pool), Tensor{}, &fresh_pool);
    float last = 0.f;
    for (int i = 0; i <= e; ++i) {
      last = fresh.train_step(labels, kLr).loss;
      EXPECT_EQ(last, reuse_loss[i]) << "epoch " << i << " diverged";
    }
    if (e == kEpochs - 1) {
      EXPECT_EQ(ops::max_abs_diff(fresh.logits(), reuse_logits), 0.f);
    }
  }
}

// One plan, two Trainer instances: independent weights, identical results.
TEST(PlanReuse, TwoTrainersShareOneCompiledModel) {
  const Graph g = small_graph();
  const IntTensor labels = make_labels(g);
  auto shared = std::make_shared<const Compiled>(
      compile_model(build_small_gcn(), ours(), /*training=*/true, g));

  MemoryPool pool_a, pool_b;
  Trainer a(shared, g, make_features(g, &pool_a), Tensor{}, &pool_a);
  Trainer b(shared, g, make_features(g, &pool_b), Tensor{}, &pool_b);
  ASSERT_EQ(&a.runner().plan(), &b.runner().plan());
  for (int e = 0; e < 3; ++e) {
    const float la = a.train_step(labels, 0.05f).loss;
    const float lb = b.train_step(labels, 0.05f).loss;
    EXPECT_EQ(la, lb);
  }
  EXPECT_EQ(ops::max_abs_diff(a.logits(), b.logits()), 0.f);
}

// M concurrent inference requests off one immutable plan.
TEST(PlanReuse, ConcurrentRunnersProduceIdenticalResults) {
  const Graph g = small_graph();
  Compiled c = compile_model(build_small_gcn(), ours(), /*training=*/false, g);
  ASSERT_NE(c.plan, nullptr);
  const std::shared_ptr<const ExecutionPlan> plan = c.plan;

  auto serve = [&](MemoryPool* pool) {
    PlanRunner runner(g, plan, pool);
    runner.bind(c.features, make_features(g, pool));
    for (std::size_t i = 0; i < c.params.size(); ++i) {
      runner.bind(c.params[i], c.init[i].clone(MemTag::kWeights, pool));
    }
    runner.run();
    return runner.result(c.output).clone();
  };

  MemoryPool ref_pool;
  const Tensor reference = serve(&ref_pool);

  constexpr int kRequests = 4;
  std::vector<Tensor> results(kRequests);
  std::vector<MemoryPool> pools(kRequests);
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] { results[i] = serve(&pools[i]); });
  }
  for (std::thread& t : threads) t.join();
  for (const Tensor& r : results) {
    EXPECT_EQ(ops::max_abs_diff(r, reference), 0.f);
  }
}

TEST(PlanCache, SecondLookupReturnsSameArtifact) {
  const Graph g = small_graph();
  PlanCache cache;
  PlanKey key{"gcn/test", "Ours", true, g.num_vertices(), g.num_edges(), 8};

  int builds = 0;
  auto build = [&] {
    ++builds;
    return build_small_gcn();
  };
  auto first = cache.get_or_compile(key, ours(), true, g, build);
  auto second = cache.get_or_compile(key, ours(), true, g, build);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A different feature width is a different artifact.
  PlanKey other = key;
  other.feat_dim = 16;
  auto third = cache.get_or_compile(other, ours(), true, g, build);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace triad
