// Tests for the model builders: structure, shapes, runnability.
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "models/models.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

Graph test_graph() {
  Rng rng(101);
  return gen::erdos_renyi(20, 100, rng);
}

int count_kind(const IrGraph& ir, OpKind k) {
  int c = 0;
  for (const Node& n : ir.nodes()) c += n.kind == k;
  return c;
}

Tensor run_model(const Graph& g, const ModelGraph& m, unsigned seed = 5) {
  Executor ex(g, m.ir);
  Rng rng(seed);
  ex.bind(m.features, Tensor::randn(g.num_vertices(),
                                    m.ir.node(m.features).cols, rng));
  if (m.pseudo >= 0) ex.bind(m.pseudo, make_pseudo_coords(g, m.ir.node(m.pseudo).cols));
  for (std::size_t i = 0; i < m.params.size(); ++i) {
    ex.bind(m.params[i], m.init[i].clone());
  }
  ex.run();
  return ex.result(m.output).clone();
}

TEST(Models, GcnRunsAndShapes) {
  Rng rng(1);
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;
  ModelGraph m = build_gcn(cfg, rng);
  Graph g = test_graph();
  Tensor out = run_model(g, m);
  EXPECT_EQ(out.rows(), 20);
  EXPECT_EQ(out.cols(), 5);
  EXPECT_EQ(m.params.size(), 4u);  // 2 layers × (W, b)
}

TEST(Models, GatNaiveHasConcatAndExpandedSoftmax) {
  Rng rng(2);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.num_classes = 3;
  ModelGraph m = build_gat(cfg, rng);
  int concats = 0, softmax_special = 0, max_gathers = 0;
  for (const Node& n : m.ir.nodes()) {
    concats += n.kind == OpKind::Scatter && n.sfn == ScatterFn::ConcatUV;
    softmax_special +=
        n.kind == OpKind::Special && n.spfn == SpecialFn::EdgeSoftmax;
    max_gathers += n.kind == OpKind::Gather && n.rfn == ReduceFn::Max;
  }
  EXPECT_EQ(concats, 2);          // paper-order form per layer
  EXPECT_EQ(softmax_special, 0);  // expanded primitives
  EXPECT_EQ(max_gathers, 2);
  Tensor out = run_model(test_graph(), m);
  EXPECT_EQ(out.cols(), 3);
}

TEST(Models, GatPrereorganizedUsesAddUV) {
  Rng rng(3);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.prereorganized = true;
  cfg.builtin_softmax = true;
  ModelGraph m = build_gat(cfg, rng);
  int concats = 0, adds = 0, builtin = 0;
  for (const Node& n : m.ir.nodes()) {
    concats += n.kind == OpKind::Scatter && n.sfn == ScatterFn::ConcatUV;
    adds += n.kind == OpKind::Scatter && n.sfn == ScatterFn::AddUV;
    builtin += n.kind == OpKind::Special && n.spfn == SpecialFn::EdgeSoftmax;
  }
  EXPECT_EQ(concats, 0);
  EXPECT_EQ(adds, 2);
  EXPECT_EQ(builtin, 2);
}

TEST(Models, GatNaiveAndPrereorganizedAgree) {
  // Same weights: the hand-reorganized DGL form must equal the paper-order
  // form (this is the identity the reorg pass exploits).
  Rng rng(4);
  GatConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.num_classes = 4;
  ModelGraph naive_m = build_gat(cfg, rng);
  GatConfig cfg2 = cfg;
  cfg2.prereorganized = true;
  Rng rng2(4);  // identical params
  ModelGraph reorg_m = build_gat(cfg2, rng2);
  Graph g = test_graph();
  Tensor a = run_model(g, naive_m, 9);
  Tensor b = run_model(g, reorg_m, 9);
  EXPECT_LT(ops::max_abs_diff(a, b), 1e-3f);
}

TEST(Models, GatMultiHeadShapes) {
  Rng rng(5);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 4;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.num_classes = 3;
  ModelGraph m = build_gat(cfg, rng);
  Tensor out = run_model(test_graph(), m);
  EXPECT_EQ(out.cols(), 3);  // last layer single head
}

TEST(Models, EdgeConvPaperOrderHasEdgeLinear) {
  Rng rng(6);
  EdgeConvConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden = {8, 16};
  cfg.num_classes = 10;
  ModelGraph m = build_edgeconv(cfg, rng);
  // The Θ projection is applied on *edge* features (the redundancy source).
  int edge_linears = 0;
  for (const Node& n : m.ir.nodes()) {
    edge_linears += n.kind == OpKind::Apply && n.afn == ApplyFn::Linear &&
                    n.space == Space::Edge;
  }
  EXPECT_EQ(edge_linears, 2);
  Tensor out = run_model(test_graph(), m);
  EXPECT_EQ(out.cols(), 10);
}

TEST(Models, MoNetRunsWithPseudo) {
  Rng rng(7);
  MoNetConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.kernels = 3;
  cfg.pseudo_dim = 2;
  cfg.num_classes = 4;
  ModelGraph m = build_monet(cfg, rng);
  EXPECT_GE(m.pseudo, 0);
  int gaussians = count_kind(m.ir, OpKind::Special);
  EXPECT_EQ(gaussians, 2);  // one per layer
  Tensor out = run_model(test_graph(), m);
  EXPECT_EQ(out.cols(), 4);
}

TEST(Models, PseudoCoordsDegreeBased) {
  Graph g(3, {{0, 1}, {0, 1}, {2, 1}, {1, 2}});
  Tensor p = make_pseudo_coords(g, 2);
  EXPECT_EQ(p.rows(), 4);
  // Edge 0: src 0 (out-deg 2) -> 1/sqrt(2); dst 1 (in-deg 3) -> 1/sqrt(3).
  EXPECT_NEAR(p.at(0, 0), 1.f / std::sqrt(2.f), 1e-5f);
  EXPECT_NEAR(p.at(0, 1), 1.f / std::sqrt(3.f), 1e-5f);
}

TEST(Models, CompileInferenceFindsHandles) {
  Rng rng(8);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.num_classes = 3;
  ModelGraph m = build_gat(cfg, rng);
  Compiled c = compile_model(std::move(m), ours(), /*training=*/false);
  EXPECT_GE(c.features, 0);
  EXPECT_GE(c.output, 0);
  EXPECT_EQ(c.seed, -1);
  EXPECT_EQ(c.params.size(), c.init.size());
  EXPECT_FALSE(c.ir.programs.empty());  // fusion actually happened
}

TEST(Models, CompileTrainingProducesGradPerParam) {
  Rng rng(9);
  MoNetConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden = 8;
  cfg.kernels = 2;
  cfg.pseudo_dim = 2;
  cfg.num_classes = 3;
  ModelGraph m = build_monet(cfg, rng);
  Compiled c = compile_model(std::move(m), dgl_like(), /*training=*/true);
  EXPECT_GE(c.seed, 0);
  EXPECT_EQ(c.param_grads.size(), c.params.size());
}

}  // namespace
}  // namespace triad
