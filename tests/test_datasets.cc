// Tests for the dataset registry and synthesis.
#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace triad {
namespace {

TEST(Datasets, PublishedSpecs) {
  const DatasetSpec cora = dataset_spec("cora");
  EXPECT_EQ(cora.vertices, 2708);
  EXPECT_EQ(cora.edges, 10556);
  EXPECT_EQ(cora.feat_dim, 1433);
  EXPECT_EQ(cora.num_classes, 7);
  EXPECT_FALSE(cora.power_law);

  const DatasetSpec reddit = dataset_spec("reddit");
  EXPECT_EQ(reddit.vertices, 232965);
  EXPECT_EQ(reddit.edges, 114615892);
  EXPECT_EQ(reddit.num_classes, 41);
  EXPECT_TRUE(reddit.power_law);

  EXPECT_EQ(dataset_spec("citeseer").feat_dim, 3703);
  EXPECT_EQ(dataset_spec("pubmed").vertices, 19717);
  EXPECT_THROW(dataset_spec("imagenet"), Error);
}

TEST(Datasets, FullScaleSynthesisMatchesSpec) {
  Rng rng(1);
  Dataset d = make_dataset("cora", rng);
  EXPECT_EQ(d.graph.num_vertices(), 2708);
  EXPECT_EQ(d.graph.num_edges(), 10556);
  EXPECT_EQ(d.features.rows(), 2708);
  EXPECT_EQ(d.features.cols(), 1433);
  EXPECT_EQ(d.labels.rows(), 2708);
  EXPECT_EQ(d.num_classes, 7);
}

TEST(Datasets, ScalingShrinksProportionally) {
  Rng rng(2);
  Dataset d = make_dataset("pubmed", rng, 0.1, 0.5);
  EXPECT_NEAR(static_cast<double>(d.graph.num_vertices()), 1972, 2);
  EXPECT_NEAR(static_cast<double>(d.graph.num_edges()), 8865, 2);
  EXPECT_EQ(d.features.cols(), 250);
}

TEST(Datasets, LabelsInRange) {
  Rng rng(3);
  Dataset d = make_dataset("citeseer", rng, 0.2);
  for (std::int64_t v = 0; v < d.labels.rows(); ++v) {
    EXPECT_GE(d.labels.at(v, 0), 0);
    EXPECT_LT(d.labels.at(v, 0), d.num_classes);
  }
}

TEST(Datasets, RedditScaledIsSkewed) {
  Rng rng(4);
  Dataset d = make_dataset("reddit", rng, 0.005);
  const double avg = static_cast<double>(d.graph.num_edges()) /
                     static_cast<double>(d.graph.num_vertices());
  EXPECT_GT(static_cast<double>(d.graph.max_in_degree()), 5 * avg);
}

TEST(Datasets, FeaturesAreClassCorrelated) {
  Rng rng(5);
  Dataset d = make_dataset("cora", rng, 0.3, 0.05);
  // Mean feature distance within a class should be below across classes.
  // Compare class 0 centroid-consistency crudely.
  std::vector<double> mean0(d.features.cols(), 0.0);
  std::vector<double> mean1(d.features.cols(), 0.0);
  int n0 = 0, n1 = 0;
  for (std::int64_t v = 0; v < d.features.rows(); ++v) {
    const int c = d.labels.at(v, 0);
    if (c == 0) {
      ++n0;
      for (std::int64_t j = 0; j < d.features.cols(); ++j) {
        mean0[j] += d.features.at(v, j);
      }
    } else if (c == 1) {
      ++n1;
      for (std::int64_t j = 0; j < d.features.cols(); ++j) {
        mean1[j] += d.features.at(v, j);
      }
    }
  }
  ASSERT_GT(n0, 3);
  ASSERT_GT(n1, 3);
  double dist = 0;
  for (std::size_t j = 0; j < mean0.size(); ++j) {
    const double diff = mean0[j] / n0 - mean1[j] / n1;
    dist += diff * diff;
  }
  EXPECT_GT(dist, 0.5);  // distinct class centroids
}

}  // namespace
}  // namespace triad
