// Failure injection: out-of-memory mid-run, malformed IR, bad bindings —
// the system must throw typed errors and leave the accounting consistent
// (no leaked bytes, no corrupted pool) so callers can recover, as the
// Figure-11 harness does when probing the fits/OOM boundary.
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "ir/autodiff.h"
#include <cstring>
#include <memory>

#include "graph/knn.h"
#include "models/models.h"
#include "models/trainer.h"
#include "serve/host.h"
#include "tensor/ops.h"
#include "support/rng.h"

namespace triad {
namespace {

Graph small_graph() {
  Rng rng(41);
  return gen::erdos_renyi(20, 120, rng);
}

TEST(FailureInjection, OomMidRunLeavesPoolConsistent) {
  Graph g = small_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 64, "x");
  // Chain that allocates several big edge tensors.
  const int e1 = ir.scatter(ScatterFn::SubUV, x, x);
  const int e2 = ir.apply_unary(ApplyFn::ReLU, e1);
  const int e3 = ir.apply_unary(ApplyFn::Exp, e2);
  const int v = ir.gather(ReduceFn::Sum, e3);
  ir.mark_output(v);

  MemoryPool pool;
  // Enough for the input + one edge tensor, not two.
  pool.set_capacity(20 * 64 * 4 + 120 * 64 * 4 + 1024);
  {
    Executor ex(g, ir, &pool);
    ex.bind(x, Tensor::zeros(20, 64, MemTag::kInput, &pool));
    EXPECT_THROW(ex.run(), OutOfMemory);
  }
  // Executor destroyed: everything it allocated must be returned.
  EXPECT_EQ(pool.live_bytes(), 0u);
}

TEST(FailureInjection, OomRecoveryRetryAtLargerCapacity) {
  // The Fig. 11 pattern: probe, catch, retry with a larger device.
  Graph g = small_graph();
  Rng rng(1);
  GcnConfig cfg;
  cfg.in_dim = 16;
  cfg.hidden = {32};
  cfg.num_classes = 3;
  IntTensor labels(20, 1);
  for (int i = 0; i < 20; ++i) labels.at(i, 0) = i % 3;

  auto attempt = [&](std::size_t cap) {
    Rng mrng(5);
    Compiled c = compile_model(build_gcn(cfg, mrng), dgl_like(), true);
    MemoryPool pool;
    pool.set_capacity(cap);
    Rng frng(6);
    Trainer t(std::move(c), g,
              Tensor::randn(20, 16, frng, 1.f, MemTag::kInput, &pool), Tensor{},
              &pool);
    t.train_step(labels, 0.01f);
  };
  EXPECT_THROW(attempt(8 * 1024), OutOfMemory);
  EXPECT_NO_THROW(attempt(64 * 1024 * 1024));
}

TEST(FailureInjection, CyclicIrRejected) {
  IrGraph ir;
  Node n;
  n.kind = OpKind::Apply;
  n.afn = ApplyFn::ReLU;
  n.inputs = {0};  // self-reference at id 0
  EXPECT_THROW(ir.append(std::move(n)), Error);
}

TEST(FailureInjection, ForwardInputBoundToWrongSpaceThrows) {
  Graph g = small_graph();
  IrGraph ir;
  const int x = ir.input(Space::Edge, 0, 4, "edge_feat");
  const int v = ir.gather(ReduceFn::Sum, x);
  ir.mark_output(v);
  Executor ex(g, ir);
  // Edge-space input needs |E| = 120 rows; 20 is wrong.
  EXPECT_THROW(ex.bind(x, Tensor::zeros(20, 4)), Error);
}

TEST(FailureInjection, MissingParamGradDetected) {
  // A param that the output does not depend on must be reported by
  // compile_model rather than silently skipped.
  Rng rng(2);
  ModelGraph m;
  m.features = m.ir.input(Space::Vertex, 0, 4, "features");
  const int w_used = m.ir.param(4, 4, "used");
  m.params.push_back(w_used);
  m.init.push_back(Tensor::xavier(4, 4, rng));
  const int orphan = m.ir.param(4, 4, "orphan");
  m.params.push_back(orphan);
  m.init.push_back(Tensor::xavier(4, 4, rng));
  m.output = m.ir.linear(m.features, w_used);
  m.ir.mark_output(m.output);
  EXPECT_THROW(compile_model(std::move(m), naive(), /*training=*/true), Error);
}

TEST(FailureInjection, BackwardBeforeForwardThrows) {
  Graph g = small_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int w = ir.param(4, 4, "w");
  const int y = ir.linear(x, w);
  ir.mark_output(y);
  build_backward(ir, y);
  Executor ex(g, ir);
  EXPECT_THROW(ex.run_backward(), Error);
}

TEST(FailureInjection, ResultOfFreedNodeThrows) {
  Graph g = small_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int mid = ir.apply_unary(ApplyFn::ReLU, x);
  const int out = ir.apply_unary(ApplyFn::Neg, mid);
  ir.mark_output(out);
  Executor ex(g, ir);
  ex.bind(x, Tensor::zeros(20, 4));
  ex.run();
  EXPECT_THROW(ex.result(mid), Error);  // freed eagerly
  EXPECT_NO_THROW(ex.result(out));
}

TEST(FailureInjection, LabelsOutOfRangeThrow) {
  Tensor logits = Tensor::zeros(4, 3);
  IntTensor labels(4, 1);
  labels.fill(7);
  EXPECT_THROW(ops::softmax_cross_entropy(logits, labels, nullptr), Error);
}

// --- serving-host failure isolation ------------------------------------------

ModelGraph failinj_gcn() {
  GcnConfig cfg;
  cfg.in_dim = 6;
  cfg.hidden = {8};
  cfg.num_classes = 4;
  Rng rng(1234);
  return build_gcn(cfg, rng);
}

serve::InferenceRequest failinj_request(std::int64_t points, unsigned seed,
                                        std::int64_t width = 6) {
  Rng rng(seed);
  const Tensor cloud = synthetic_point_cloud(points, 3, seed % 4, rng);
  serve::InferenceRequest req;
  req.graph = std::make_shared<const Graph>(points, knn_edges(cloud, 3));
  req.features = Tensor(points, width, MemTag::kInput);
  for (std::int64_t i = 0; i < req.features.numel(); ++i) {
    req.features.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return req;
}

TEST(FailureInjection, ReloadBuilderThrowLeavesServing) {
  // A builder that faults mid-reload must leave the old weights serving,
  // count nothing in reloads, and propagate its own error to the caller.
  serve::ServingHost host({.workers = 0});
  host.register_model("failinj/reload-throw", failinj_gcn);

  auto before = host.submit("failinj/reload-throw", failinj_request(8, 1));
  while (host.pump()) {
  }
  const Tensor expected = before.get().output;

  EXPECT_THROW(host.reload("failinj/reload-throw",
                           []() -> ModelGraph {
                             throw Error("weights store unavailable");
                           }),
               Error);
  EXPECT_EQ(host.stats("failinj/reload-throw").reloads, 0u);

  // Still serving, still the old weights.
  auto after = host.submit("failinj/reload-throw", failinj_request(8, 1));
  while (host.pump()) {
  }
  const Tensor out = after.get().output;
  ASSERT_EQ(out.rows(), expected.rows());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(),
                        static_cast<std::size_t>(out.numel()) * sizeof(float)),
            0);
}

TEST(FailureInjection, ReloadShapeMismatchRejected) {
  // A reload whose parameters change shape (architecture drift) is refused
  // atomically: the error surfaces, the old weights keep serving.
  serve::ServingHost host({.workers = 0});
  host.register_model("failinj/reload-shape", failinj_gcn);
  EXPECT_THROW(host.reload("failinj/reload-shape",
                           [] {
                             GcnConfig cfg;
                             cfg.in_dim = 6;
                             cfg.hidden = {16};  // different hidden width
                             cfg.num_classes = 4;
                             Rng rng(1);
                             return build_gcn(cfg, rng);
                           }),
               Error);
  EXPECT_EQ(host.stats("failinj/reload-shape").reloads, 0u);
  auto fut = host.submit("failinj/reload-shape", failinj_request(8, 2));
  while (host.pump()) {
  }
  EXPECT_NO_THROW(fut.get());
}

TEST(FailureInjection, WorkerFaultFailsOnlyThatBatch) {
  // One poisoned batch (wrong feature width) fails its own futures and
  // increments ServerStats::failed — while the same model and the *other*
  // model keep serving, and the host stays joinable.
  serve::HostConfig cfg;
  cfg.workers = 2;
  serve::ServingHost host(cfg);
  serve::ModelOptions mo;
  mo.batch.max_batch = 1;  // the poisoned request rides alone
  mo.batch.max_wait_us = 0;
  host.register_model("failinj/faulty", failinj_gcn, mo);
  host.register_model("failinj/healthy", failinj_gcn, mo);

  auto bad = host.submit("failinj/faulty", failinj_request(8, 3, /*width=*/3));
  EXPECT_THROW(bad.get(), Error);

  // The faulted model still serves the next request...
  auto good_same = host.submit("failinj/faulty", failinj_request(8, 4));
  EXPECT_NO_THROW(good_same.get());
  // ...and the other model never noticed.
  auto good_other = host.submit("failinj/healthy", failinj_request(8, 5));
  EXPECT_NO_THROW(good_other.get());

  host.shutdown();  // joinable: no worker died with the batch
  const serve::ServerStats faulty = host.stats("failinj/faulty");
  EXPECT_EQ(faulty.failed, 1u);
  EXPECT_EQ(faulty.completed, 1u);
  const serve::ServerStats healthy = host.stats("failinj/healthy");
  EXPECT_EQ(healthy.failed, 0u);
  EXPECT_EQ(healthy.completed, 1u);
}

}  // namespace
}  // namespace triad
