// Transport layer (src/transport/): the message-passing seam for cross-shard
// flows, and the ParamServer split of training state.
//
// Three contracts are pinned here:
//  * LocalTransport semantics — pull-mode FIFO channels, push-mode inline
//    delivery, fabric-wide message/byte accounting — and the ExchangePlan's
//    per-ordered-pair cut counts against a brute-force edge sweep;
//  * bit-identity: routing boundary publishes and parameter updates through
//    the transport must not perturb a single bit. Every model × strategy × K
//    comparison is memcmp against the direct-memory (--no-transport) path;
//  * ParamServer state ownership — the optimizer and its momentum/Adam state
//    live server-side, attach() runs exactly once, and N push/pull round
//    trips reproduce the direct in-place update bit for bit.
//
// Plus the serving fairness knob that rides along: max_workers_per_model
// bounds peak_workers however hot the model runs.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/triad.h"
#include "baselines/strategy.h"
#include "graph/generators.h"
#include "graph/knn.h"
#include "graph/partition.h"
#include "models/models.h"
#include "models/optim.h"
#include "models/trainer.h"
#include "serve/host.h"
#include "support/counters.h"
#include "support/rng.h"
#include "transport/exchange.h"
#include "transport/param_server.h"
#include "transport/transport.h"

namespace triad {
namespace {

using serve::ServingHost;
using transport::ExchangePlan;
using transport::LocalTransport;
using transport::ParamServer;
using transport::TransportMessage;
using transport::TransportStats;

Graph test_graph() {
  Rng rng(11);
  return gen::rmat(7, 1500, rng);  // 128 vertices, skewed degrees
}

Tensor random_features(std::int64_t n, std::int64_t d, MemoryPool* pool) {
  Rng rng(23);
  Tensor t(n, d, MemTag::kInput, pool);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

IntTensor random_labels(std::int64_t n, std::int32_t classes) {
  Rng rng(29);
  IntTensor t(n, 1);
  for (std::int64_t v = 0; v < n; ++v) {
    t.at(v, 0) = static_cast<std::int32_t>(rng.uniform_int(classes));
  }
  return t;
}

void expect_bit_identical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs bitwise";
}

/// The direct-memory ablation of any strategy — what --no-transport selects.
Strategy without_transport(Strategy s) {
  s.transport = false;
  s.name += "(-transport)";
  return s;
}

// --- LocalTransport semantics -----------------------------------------------

TEST(Transport, PullModeIsFifoAndCounted) {
  LocalTransport fabric(3, 8);
  ASSERT_EQ(fabric.num_endpoints(), 3);
  EXPECT_EQ(fabric.channel(0, 2).src(), 0);
  EXPECT_EQ(fabric.channel(0, 2).dst(), 2);

  float payload[4] = {1, 2, 3, 4};
  for (std::uint32_t i = 0; i < 3; ++i) {
    TransportMessage m;
    m.src = 0;
    m.dst = 2;
    m.tag = i;
    m.data = payload;
    m.bytes = sizeof(payload);
    ASSERT_TRUE(fabric.channel(0, 2).send(m));
  }
  // FIFO on the (0, 2) lane; the (1, 2) lane is independent and empty.
  EXPECT_FALSE(fabric.channel(1, 2).try_recv().has_value());
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto m = fabric.channel(0, 2).try_recv();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, i);
    EXPECT_EQ(m->src, 0);
    EXPECT_EQ(m->dst, 2);
    EXPECT_EQ(m->data, payload);  // zero-copy: the view travels unchanged
    EXPECT_EQ(m->bytes, sizeof(payload));
  }
  EXPECT_FALSE(fabric.channel(0, 2).try_recv().has_value());

  const TransportStats st = fabric.stats();
  EXPECT_EQ(st.messages, 3u);
  EXPECT_EQ(st.bytes, 3u * sizeof(payload));
  fabric.close();
  EXPECT_FALSE(fabric.channel(0, 2).recv().has_value());  // closed + drained
}

TEST(Transport, PushModeDeliversInlineOnSenderThread) {
  LocalTransport fabric(2, 4);
  std::vector<std::uint32_t> delivered;
  fabric.set_delivery(1, [&](const TransportMessage& m) {
    delivered.push_back(m.tag);  // unsynchronized: inline == same thread
  });
  for (std::uint32_t i = 0; i < 5; ++i) {
    TransportMessage m;
    m.src = 0;
    m.dst = 1;
    m.tag = i;
    m.bytes = 16;
    ASSERT_TRUE(fabric.channel(0, 1).send(m));
    // Delivery already happened by the time send() returned.
    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(i) + 1);
    EXPECT_EQ(delivered.back(), i);
  }
  // Push mode bypasses the queue entirely — nothing to pull.
  EXPECT_FALSE(fabric.channel(0, 1).try_recv().has_value());
  // Accounting is identical in both modes.
  EXPECT_EQ(fabric.stats().messages, 5u);
  EXPECT_EQ(fabric.stats().bytes, 80u);

  fabric.clear_delivery();
  TransportMessage m;
  m.src = 0;
  m.dst = 1;
  m.tag = 99;
  ASSERT_TRUE(fabric.channel(0, 1).send(m));
  EXPECT_EQ(delivered.size(), 5u);  // hook gone: back to pull mode
  auto pulled = fabric.channel(0, 1).try_recv();
  ASSERT_TRUE(pulled.has_value());
  EXPECT_EQ(pulled->tag, 99u);
}

TEST(Transport, ExchangePlanMatchesBruteForceCutCounts) {
  const Graph g = test_graph();
  const Partitioning part =
      Partitioning::build(g, 4, PartitionStrategy::DegreeBalanced);
  const ExchangePlan plan(g, part);
  ASSERT_EQ(plan.num_shards(), 4);

  // Brute force: count cut edges per (owner(dst), owner(src)) pair.
  std::vector<std::int64_t> d2s(16, 0);
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const int os = part.owner_of(g.edge_src()[static_cast<std::size_t>(e)]);
    const int od = part.owner_of(g.edge_dst()[static_cast<std::size_t>(e)]);
    if (os != od) ++d2s[static_cast<std::size_t>(od) * 4 + os];
  }
  std::int64_t total = 0;
  for (int from = 0; from < 4; ++from) {
    EXPECT_EQ(plan.cut(true, from, from), 0);  // diagonal never crosses
    for (int to = 0; to < 4; ++to) {
      // dst-major walk: shard `from` walks its owned destinations and stashes
      // contributions for src-owner `to`; src-major is the transpose.
      EXPECT_EQ(plan.cut(/*dst_major=*/true, from, to),
                d2s[static_cast<std::size_t>(from) * 4 + to])
          << "dst-major " << from << "->" << to;
      EXPECT_EQ(plan.cut(/*dst_major=*/false, from, to),
                d2s[static_cast<std::size_t>(to) * 4 + from])
          << "src-major " << from << "->" << to;
      total += plan.cut(true, from, to);
    }
  }
  EXPECT_GT(total, 0);  // an rmat graph at K=4 must cut something
}

// --- end-to-end bit identity -------------------------------------------------

struct RunResult {
  Tensor logits;
  std::vector<Tensor> params;
};

/// One deterministic training run; pseudo_dim > 0 builds the MoNet edge
/// pseudo-coordinates input.
template <typename BuildFn>
RunResult train_run(const Graph& g, BuildFn&& build, int shards, int steps,
                    std::int64_t in_dim, std::int64_t pseudo_dim,
                    const Strategy& strat) {
  Rng mrng(7);  // fixed: identical initial weights across runs
  Compiled c = compile_model(build(mrng), strat, /*training=*/true, g, shards,
                             PartitionStrategy::DegreeBalanced);
  std::vector<int> param_nodes = c.params;
  MemoryPool pool;
  Tensor pseudo =
      pseudo_dim > 0 ? make_pseudo_coords(g, pseudo_dim) : Tensor{};
  Trainer t(std::move(c), g, random_features(g.num_vertices(), in_dim, &pool),
            std::move(pseudo), &pool);
  const IntTensor labels = random_labels(g.num_vertices(), 4);
  for (int i = 0; i < steps; ++i) t.train_step(labels, 1e-2f);
  RunResult r{t.logits().clone(MemTag::kWorkspace), {}};
  for (int p : param_nodes) {
    r.params.push_back(t.runner().result(p).clone(MemTag::kWorkspace));
  }
  return r;
}

/// Transport-on vs direct memory, all bitwise, for one model under both the
/// fused and unfused strategy (fusion changes which programs have boundary
/// reductions) and K in {1, 4, 8} (plus the unsharded anchor).
template <typename BuildFn>
void check_bit_identity(const Graph& g, BuildFn&& build, std::int64_t in_dim,
                        std::int64_t pseudo_dim, const char* what) {
  for (const Strategy& strat : {ours(), ours_no_fusion()}) {
    // Anchor: unsharded, direct memory — the pre-transport ground truth.
    const RunResult base = train_run(g, build, /*shards=*/0, 2, in_dim,
                                     pseudo_dim, without_transport(strat));
    for (int k : {1, 4, 8}) {
      const RunResult on = train_run(g, build, k, 2, in_dim, pseudo_dim, strat);
      const RunResult off = train_run(g, build, k, 2, in_dim, pseudo_dim,
                                      without_transport(strat));
      expect_bit_identical(base.logits, on.logits, what);
      expect_bit_identical(base.logits, off.logits, what);
      ASSERT_EQ(base.params.size(), on.params.size());
      ASSERT_EQ(base.params.size(), off.params.size());
      for (std::size_t i = 0; i < base.params.size(); ++i) {
        expect_bit_identical(base.params[i], on.params[i], what);
        expect_bit_identical(base.params[i], off.params[i], what);
      }
    }
  }
}

TEST(Transport, GcnBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        GcnConfig cfg;
        cfg.in_dim = 6;
        cfg.hidden = {8};
        cfg.num_classes = 4;
        return build_gcn(cfg, r);
      },
      6, 0, "GCN");
}

TEST(Transport, GatBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        GatConfig cfg;
        cfg.in_dim = 6;
        cfg.hidden = 8;
        cfg.heads = 2;
        cfg.layers = 2;
        cfg.num_classes = 4;
        return build_gat(cfg, r);
      },
      6, 0, "GAT");
}

TEST(Transport, EdgeConvBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        EdgeConvConfig cfg;
        cfg.in_dim = 5;
        cfg.hidden = {8, 8};
        cfg.num_classes = 4;
        return build_edgeconv(cfg, r);
      },
      5, 0, "EdgeConv");
}

TEST(Transport, MoNetBitIdentical) {
  const Graph g = test_graph();
  check_bit_identity(
      g,
      [](Rng& r) {
        MoNetConfig cfg;
        cfg.in_dim = 5;
        cfg.hidden = 8;
        cfg.layers = 2;
        cfg.kernels = 2;
        cfg.pseudo_dim = 2;
        cfg.num_classes = 4;
        return build_monet(cfg, r);
      },
      5, 2, "MoNet");
}

TEST(Transport, CountersFireWithTransportAndStayZeroWithout) {
  const Graph g = test_graph();
  const auto build = [](Rng& r) {
    GatConfig cfg;  // GAT: mixed orientations -> real boundary traffic
    cfg.in_dim = 6;
    cfg.hidden = 8;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.num_classes = 4;
    return build_gat(cfg, r);
  };
  CounterScope on_scope;
  train_run(g, build, 4, 1, 6, 0, ours());
  const PerfCounters on = on_scope.delta();
  EXPECT_GT(on.transport_msgs, 0u);
  EXPECT_GT(on.transport_bytes, 0u);
  EXPECT_GT(on.param_push_bytes, 0u);
  EXPECT_GT(on.param_pull_bytes, 0u);

  CounterScope off_scope;
  train_run(g, build, 4, 1, 6, 0, without_transport(ours()));
  const PerfCounters off = off_scope.delta();
  // The direct-memory ablation restores today's accounting exactly: nothing
  // crosses the fabric because there is no fabric.
  EXPECT_EQ(off.transport_msgs, 0u);
  EXPECT_EQ(off.transport_bytes, 0u);
  EXPECT_EQ(off.param_push_bytes, 0u);
  EXPECT_EQ(off.param_pull_bytes, 0u);
}

// --- ParamServer state ownership ---------------------------------------------

std::vector<Tensor> fixed_params(MemoryPool* pool) {
  Rng rng(41);
  std::vector<Tensor> p;
  p.push_back(Tensor::randn(4, 3, rng, 1.f, MemTag::kWeights, pool));
  p.push_back(Tensor::randn(1, 5, rng, 1.f, MemTag::kWeights, pool));
  return p;
}

std::vector<Tensor> fixed_grads(MemoryPool* pool) {
  Rng rng(43);
  std::vector<Tensor> g;
  g.push_back(Tensor::randn(4, 3, rng, 1.f, MemTag::kGradient, pool));
  g.push_back(Tensor::randn(1, 5, rng, 1.f, MemTag::kGradient, pool));
  return g;
}

TEST(ParamServer, PlainSgdRoundTripMatchesDirectUpdate) {
  MemoryPool pool;
  std::vector<Tensor> init = fixed_params(&pool);
  std::vector<Tensor> grads = fixed_grads(&pool);
  std::vector<const Tensor*> gptrs;
  for (const Tensor& g : grads) gptrs.push_back(&g);
  constexpr float kLr = 3e-2f;
  constexpr int kSteps = 5;

  // Direct in-place SGD — the Trainer's old update, p -= lr * g.
  std::vector<Tensor> direct;
  for (const Tensor& p : init) direct.push_back(p.clone(MemTag::kWeights));
  for (int s = 0; s < kSteps; ++s) {
    for (std::size_t i = 0; i < direct.size(); ++i) {
      for (std::int64_t j = 0; j < direct[i].numel(); ++j) {
        direct[i].data()[j] += -kLr * grads[i].data()[j];
      }
    }
  }

  // Server-side: N push/pull round trips over the fabric.
  std::vector<Tensor> server_init;
  for (const Tensor& p : init) server_init.push_back(p.clone(MemTag::kWeights));
  ParamServer ps(std::move(server_init), &pool);
  std::vector<Tensor> pulled;
  for (const Tensor& p : init) pulled.push_back(p.clone(MemTag::kWeights));
  for (int s = 0; s < kSteps; ++s) {
    ps.push_grads(gptrs, kLr);
    ps.pull_params(pulled);
  }
  for (std::size_t i = 0; i < direct.size(); ++i) {
    expect_bit_identical(direct[i], pulled[i], "SGD round trip");
    expect_bit_identical(direct[i], ps.params()[i], "server params");
  }
  // 5 steps x (2 grad msgs + 1 pull request + 2 reply msgs).
  EXPECT_EQ(ps.stats().messages, 5u * 5u);
}

/// Optimizer state (momentum velocities, Adam moments + timestep) lives
/// server-side and must survive N push/pull round trips bit-identically —
/// the satellite contract for moving the Optimizer into the ParamServer.
void check_optimizer_round_trip(std::unique_ptr<Optimizer> direct_opt,
                                std::unique_ptr<Optimizer> server_opt,
                                const char* what) {
  MemoryPool pool;
  std::vector<Tensor> init = fixed_params(&pool);
  std::vector<Tensor> grads = fixed_grads(&pool);
  std::vector<const Tensor*> gptrs;
  for (const Tensor& g : grads) gptrs.push_back(&g);
  constexpr int kSteps = 7;  // > 1: stale state would diverge by step 2

  std::vector<Tensor> direct;
  for (const Tensor& p : init) direct.push_back(p.clone(MemTag::kWeights));
  direct_opt->attach(direct);
  for (int s = 0; s < kSteps; ++s) direct_opt->step(direct, gptrs);

  std::vector<Tensor> server_init;
  for (const Tensor& p : init) server_init.push_back(p.clone(MemTag::kWeights));
  ParamServer ps(std::move(server_init), &pool);
  ps.set_optimizer(std::move(server_opt));
  std::vector<Tensor> pulled;
  for (const Tensor& p : init) pulled.push_back(p.clone(MemTag::kWeights));
  for (int s = 0; s < kSteps; ++s) {
    ps.push_grads(gptrs, /*lr=*/123.f);  // lr ignored with an optimizer
    ps.pull_params(pulled);
  }
  EXPECT_EQ(ps.attach_calls(), 1) << what;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    expect_bit_identical(direct[i], pulled[i], what);
  }
}

TEST(ParamServer, MomentumStateSurvivesRoundTrips) {
  check_optimizer_round_trip(
      std::make_unique<Sgd>(1e-2f, /*momentum=*/0.9f),
      std::make_unique<Sgd>(1e-2f, /*momentum=*/0.9f), "momentum SGD");
}

TEST(ParamServer, AdamStateSurvivesRoundTrips) {
  check_optimizer_round_trip(std::make_unique<Adam>(1e-3f),
                             std::make_unique<Adam>(1e-3f), "Adam");
}

TEST(ParamServer, TrainerRoutesThroughServerWithAdamBitIdentically) {
  // End to end: a sharded Trainer with an installed Adam optimizer trains
  // bit-identically with and without the ParamServer in the loop, and the
  // transport path provably owns the optimizer (attach exactly once).
  const Graph g = test_graph();
  const auto build = [](Rng& r) {
    GatConfig cfg;
    cfg.in_dim = 6;
    cfg.hidden = 8;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.num_classes = 4;
    return build_gat(cfg, r);
  };
  const IntTensor labels = random_labels(g.num_vertices(), 4);
  auto run = [&](const Strategy& strat, bool* had_server) {
    Rng mrng(7);
    Compiled c = compile_model(build(mrng), strat, /*training=*/true, g, 4,
                               PartitionStrategy::DegreeBalanced);
    MemoryPool pool;
    Trainer t(std::move(c), g,
              random_features(g.num_vertices(), 6, &pool), Tensor{}, &pool);
    t.set_optimizer(std::make_unique<Adam>(1e-3f));
    for (int i = 0; i < 3; ++i) t.train_step(labels);
    if (had_server != nullptr) {
      *had_server = t.param_server() != nullptr;
      if (t.param_server() != nullptr) {
        EXPECT_EQ(t.param_server()->attach_calls(), 1);
      }
    }
    return t.logits().clone(MemTag::kWorkspace);
  };
  bool on_server = false, off_server = true;
  const Tensor on = run(ours(), &on_server);
  const Tensor off = run(without_transport(ours()), &off_server);
  EXPECT_TRUE(on_server);    // transport=true trains through the server
  EXPECT_FALSE(off_server);  // the ablation keeps the in-place update
  expect_bit_identical(on, off, "Adam training through ParamServer");
}

// --- serving fairness: max_workers_per_model ---------------------------------

constexpr std::int64_t kInDim = 6;

ModelGraph quota_gcn() {
  GcnConfig cfg;
  cfg.in_dim = kInDim;
  cfg.hidden = {8};
  cfg.num_classes = 4;
  Rng rng(1234);  // fixed: every invocation yields bit-identical weights
  return build_gcn(cfg, rng);
}

serve::InferenceRequest quota_request(std::int64_t points, unsigned seed) {
  Rng rng(seed);
  const Tensor cloud = synthetic_point_cloud(points, 3, seed % 4, rng);
  serve::InferenceRequest req;
  req.graph = std::make_shared<const Graph>(points, knn_edges(cloud, 3));
  req.features = Tensor(points, kInDim, MemTag::kInput);
  for (std::int64_t i = 0; i < req.features.numel(); ++i) {
    req.features.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return req;
}

TEST(ServingHost, WorkerQuotaBoundsPeakWorkers) {
  // Three shared workers, but the one hot model may hold at most one of
  // them: peak_workers is the observed fairness bound and must never exceed
  // the quota, however many requests pile up.
  serve::HostConfig cfg;
  cfg.workers = 3;
  cfg.max_workers_per_model = 1;
  ServingHost host(cfg);
  serve::ModelOptions mo;
  mo.batch.max_batch = 2;  // small batches -> many collect() claims
  mo.batch.max_wait_us = 100;
  host.register_model("transport/quota", quota_gcn, mo);

  std::vector<std::future<serve::InferenceResult>> futures;
  for (unsigned i = 0; i < 12; ++i) {
    futures.push_back(host.submit("transport/quota", quota_request(10, 50 + i)));
  }
  for (auto& f : futures) f.get();
  host.shutdown();

  const serve::ServerStats st = host.stats("transport/quota");
  EXPECT_EQ(st.completed, 12u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.peak_workers, 0);
  EXPECT_LE(st.peak_workers, 1);  // the quota held
  // The aggregate reports the max across models (one model here).
  EXPECT_EQ(host.stats().total.peak_workers, st.peak_workers);
}

TEST(ServingHost, UnlimitedQuotaByDefault) {
  // quota = 0 keeps today's behavior: any worker may pick up the model, and
  // the peak merely observes whatever concurrency actually happened.
  serve::HostConfig cfg;
  cfg.workers = 2;
  ServingHost host(cfg);
  serve::ModelOptions mo;
  mo.batch.max_batch = 2;
  mo.batch.max_wait_us = 100;
  host.register_model("transport/unbounded", quota_gcn, mo);
  std::vector<std::future<serve::InferenceResult>> futures;
  for (unsigned i = 0; i < 8; ++i) {
    futures.push_back(
        host.submit("transport/unbounded", quota_request(10, 90 + i)));
  }
  for (auto& f : futures) f.get();
  host.shutdown();
  const serve::ServerStats st = host.stats("transport/unbounded");
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.peak_workers, 0);
  EXPECT_LE(st.peak_workers, 2);  // can't exceed the pool itself
}

}  // namespace
}  // namespace triad
