// Tests for the gSpMM/gSDDMM compatibility layer and the DOT exporter —
// the Section-2.1 expressiveness comparison made executable.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "graph/generators.h"
#include "ir/dgl_compat.h"
#include "ir/dot.h"
#include "ir/passes/fusion.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

Graph test_graph() {
  Rng rng(61);
  return gen::erdos_renyi(12, 70, rng);
}

TEST(DglCompat, GsddmmMatchesScatterKernels) {
  Graph g = test_graph();
  IrGraph ir;
  const int a = ir.input(Space::Vertex, 0, 4, "a");
  const int b = ir.input(Space::Vertex, 0, 4, "b");
  const int add = dgl::gsddmm(ir, dgl::BinaryOp::Add, a, b);
  const int sub = dgl::gsddmm(ir, dgl::BinaryOp::Sub, a, b);
  const int mul = dgl::gsddmm(ir, dgl::BinaryOp::Mul, a, b);
  ir.mark_output(add);
  ir.mark_output(sub);
  ir.mark_output(mul);
  Executor ex(g, ir);
  Rng rng(5);
  Tensor ta = Tensor::randn(12, 4, rng);
  Tensor tb = Tensor::randn(12, 4, rng);
  ex.bind(a, ta);
  ex.bind(b, tb);
  ex.run();
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const int u = g.edge_src()[e];
    const int v = g.edge_dst()[e];
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(ex.result(add).at(e, j), ta.at(u, j) + tb.at(v, j));
      EXPECT_FLOAT_EQ(ex.result(sub).at(e, j), ta.at(u, j) - tb.at(v, j));
      EXPECT_FLOAT_EQ(ex.result(mul).at(e, j), ta.at(u, j) * tb.at(v, j));
    }
  }
}

TEST(DglCompat, GspmmCopyUSumIsSpmv) {
  Graph g = test_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 3, "x");
  const int out = dgl::gspmm(ir, dgl::BinaryOp::CopyLhs, ReduceFn::Sum, x, -1);
  ir.mark_output(out);
  Executor ex(g, ir);
  Rng rng(6);
  Tensor tx = Tensor::randn(12, 3, rng);
  ex.bind(x, tx);
  ex.run();
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (int j = 0; j < 3; ++j) {
      float ref = 0.f;
      for (std::int64_t i = g.in_ptr()[v]; i < g.in_ptr()[v + 1]; ++i) {
        ref += tx.at(g.in_src()[i], j);
      }
      EXPECT_NEAR(ex.result(out).at(v, j), ref, 1e-4f);
    }
  }
}

TEST(DglCompat, GspmmUMulEWithHeadBroadcast) {
  // DGL's u_mul_e with per-head edge scalars — the GAT aggregate.
  Graph g = test_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 6, "x");    // 2 heads × 3
  const int w = ir.input(Space::Edge, 0, 2, "w");
  const int out = dgl::gspmm(ir, dgl::BinaryOp::Mul, ReduceFn::Sum, x, w, 2);
  ir.mark_output(out);
  Executor ex(g, ir);
  Rng rng(7);
  Tensor tx = Tensor::randn(12, 6, rng);
  Tensor tw = Tensor::randn(g.num_edges(), 2, rng);
  ex.bind(x, tx);
  ex.bind(w, tw);
  ex.run();
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (int h = 0; h < 2; ++h) {
      for (int j = 0; j < 3; ++j) {
        float ref = 0.f;
        for (std::int64_t i = g.in_ptr()[v]; i < g.in_ptr()[v + 1]; ++i) {
          ref += tx.at(g.in_src()[i], h * 3 + j) * tw.at(g.in_eid()[i], h);
        }
        EXPECT_NEAR(ex.result(out).at(v, h * 3 + j), ref, 1e-4f);
      }
    }
  }
}

TEST(DglCompat, GsddmmIntoGspmmFusesAcrossTheBoundary) {
  // The paper's §2.1 point: with fine-grained ops, the last Scatter of a
  // gSDDMM fuses with the first Gather of the following gSpMM — impossible
  // at the coarse primitive granularity.
  Graph g = test_graph();
  IrGraph ir;
  const int a = ir.input(Space::Vertex, 0, 4, "a");
  const int e = dgl::gsddmm(ir, dgl::BinaryOp::Sub, a, a);
  const int out = ir.gather(ReduceFn::Max, e);
  ir.mark_output(out);
  FusionStats stats;
  IrGraph fused = fusion_pass(ir, {}, &stats);
  EXPECT_EQ(stats.regions, 1);
  EXPECT_EQ(stats.fused_nodes, 2);
  EXPECT_EQ(stats.edge_tensors_eliminated, 1);
  (void)out;
}

TEST(DglCompat, GspmmMaxAndMean) {
  Graph g = test_graph();
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 2, "x");
  const int mx = dgl::gspmm(ir, dgl::BinaryOp::CopyLhs, ReduceFn::Max, x, -1);
  const int mn = dgl::gspmm(ir, dgl::BinaryOp::CopyLhs, ReduceFn::Mean, x, -1);
  ir.mark_output(mx);
  ir.mark_output(mn);
  Executor ex(g, ir);
  Rng rng(8);
  ex.bind(x, Tensor::randn(12, 2, rng));
  EXPECT_NO_THROW(ex.run());
}

TEST(Dot, ExportContainsNodesAndBackwardMark) {
  IrGraph ir;
  const int x = ir.input(Space::Vertex, 0, 4, "x");
  const int w = ir.param(4, 2, "w");
  const int y = ir.linear(x, w);
  ir.mark_output(y);
  ir.backward_start = y;  // pretend, for the color check
  const std::string dot = to_dot(ir, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("diamond"), std::string::npos);  // param shape
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace triad
