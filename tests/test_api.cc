// Tests for the typed front-end (src/api): build-time diagnostics,
// builder-vs-module bit-identity, hierarchical parameter naming, and the
// Engine entry point.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "api/triad.h"
#include "graph/generators.h"
#include "tensor/ops.h"

namespace triad {
namespace {

using api::Value;

Graph test_graph() {
  Rng rng(101);
  return gen::erdos_renyi(24, 120, rng);
}

/// Expects `fn()` to throw triad::Error whose message contains every
/// fragment — the "diagnostics are actionable" contract.
template <typename Fn>
void expect_error_containing(Fn&& fn, std::initializer_list<const char*> frags) {
  try {
    fn();
    FAIL() << "expected triad::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const char* frag : frags) {
      EXPECT_NE(what.find(frag), std::string::npos)
          << "message missing '" << frag << "': " << what;
    }
  }
}

// --- build-time diagnostics --------------------------------------------------

TEST(ApiDiagnostics, VertexOpFedEdgeSpaceValue) {
  api::GraphBuilder g;
  const Value x = g.features(8);
  const Value e = api::copy_u(x, "msg");  // edge-space
  // A scatter consumes vertex-space values; feeding it the edge-space 'msg'
  // must fail at build time, naming the op and the offending value.
  expect_error_containing([&] { api::copy_u(e); },
                          {"scatter(copy_u)", "vertex-space", "msg"});
  // Same for the edge->vertex direction: gather eats edge-space only.
  expect_error_containing([&] { api::gather_sum(x); },
                          {"gather(sum)", "edge-space", "features"});
}

TEST(ApiDiagnostics, WidthMismatchInApplyBinary) {
  api::GraphBuilder g;
  const Value x = g.features(8);
  const Value w = g.param(8, 4, "W", Tensor::zeros(8, 4, MemTag::kWeights));
  const Value a = api::linear(x, w, 0, 0, "proj4");
  expect_error_containing([&] { api::add(x, a); },
                          {"add", "widths differ", "features", "proj4"});
  expect_error_containing([&] { x* a; }, {"mul", "widths differ"});
}

TEST(ApiDiagnostics, ValueFromDifferentGraph) {
  api::GraphBuilder g1;
  api::GraphBuilder g2;
  const Value a = g1.features(4);
  const Value b = g2.features(4);
  expect_error_containing([&] { api::u_add_v(a, b); },
                          {"scatter(u_add_v)", "different graphs"});
  expect_error_containing([&] { api::add(a, b); }, {"different graphs"});
}

TEST(ApiDiagnostics, UndefinedValueRejected) {
  api::GraphBuilder g;
  const Value x = g.features(4);
  expect_error_containing([&] { api::add(x, Value()); }, {"undefined"});
  expect_error_containing([&] { api::u_add_v(x, Value()); },
                          {"scatter(u_add_v)", "undefined"});
}

TEST(ApiDiagnostics, LinearChecksWeightAndWindow) {
  api::GraphBuilder g;
  const Value x = g.features(8);
  const Value w = g.param(6, 4, "W", Tensor::zeros(6, 4, MemTag::kWeights));
  expect_error_containing([&] { api::linear(x, w); },
                          {"linear", "does not match", "W"});
  expect_error_containing([&] { api::linear(x, w, 0, 99); },
                          {"linear", "row window", "out of range"});
  expect_error_containing([&] { api::linear(x, x); },
                          {"linear", "param-space", "features"});
}

TEST(ApiDiagnostics, HeadOpsValidateHeadCounts) {
  api::GraphBuilder g;
  const Value x = g.features(8);
  const Value e = api::copy_u(x);
  const Value s = api::u_dot_v(x, x, 2, "scores");  // Ex2
  expect_error_containing([&] { api::mul_head(e, s, 4); },
                          {"mul_head", "heads=4", "scores"});
  expect_error_containing([&] { api::head_sum(x, 3, 1.f); },
                          {"head_sum", "not divisible", "heads=3"});
}

TEST(ApiDiagnostics, OpsAfterFinishAreRejectedByName) {
  api::GraphBuilder g;
  const Value x = g.features(4);
  const ModelGraph m = g.finish(x);
  EXPECT_GE(m.output, 0);
  expect_error_containing([&] { api::relu(x); }, {"ReLU", "finished"});
  expect_error_containing([&] { api::copy_u(x); },
                          {"scatter(copy_u)", "finished"});
  expect_error_containing([&] { g.features(4); }, {"finished"});
}

TEST(ApiDiagnostics, MixedSpaceElementwise) {
  api::GraphBuilder g;
  const Value x = g.features(8);
  const Value e = api::copy_u(x, "msg");
  expect_error_containing([&] { api::add(x, e); },
                          {"add", "different spaces", "features", "msg"});
}

// --- builder-vs-module bit-identity ------------------------------------------

std::string compiled_dump(ModelGraph m, const Strategy& s, bool training,
                          const Graph& g) {
  const Compiled c = compile_model(std::move(m), s, training, g);
  return c.ir.dump();
}

/// The legacy build_* shims and the api:: modules must produce bit-identical
/// IR all the way through the pass pipeline, under the full strategy and the
/// no-op strategy, with bitwise-equal parameter init.
template <typename ModuleT, typename Cfg>
void expect_bit_identity(const Cfg& cfg) {
  const Graph g = test_graph();
  Rng r1(7);
  Rng r2(7);
  const ModuleT module(cfg);
  ModelGraph legacy = ModuleT(cfg).build(r1);  // what the shim does
  ModelGraph direct = module.build(r2);
  ASSERT_EQ(legacy.ir.dump(), direct.ir.dump());
  ASSERT_EQ(legacy.init.size(), direct.init.size());
  for (std::size_t i = 0; i < legacy.init.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(legacy.init[i], direct.init[i]), 0.f);
  }
  for (const Strategy& s : {ours(), naive()}) {
    for (const bool training : {false, true}) {
      Rng r3(7);
      Rng r4(7);
      ModelGraph via_shim = [&] {
        if constexpr (std::is_same_v<ModuleT, api::Gcn>) return build_gcn(cfg, r3);
        else if constexpr (std::is_same_v<ModuleT, api::Gat>) return build_gat(cfg, r3);
        else if constexpr (std::is_same_v<ModuleT, api::EdgeConv>) return build_edgeconv(cfg, r3);
        else return build_monet(cfg, r3);
      }();
      EXPECT_EQ(compiled_dump(std::move(via_shim), s, training, g),
                compiled_dump(module.build(r4), s, training, g))
          << "strategy=" << s.name << " training=" << training;
    }
  }
}

TEST(ApiBitIdentity, Gcn) {
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;
  expect_bit_identity<api::Gcn>(cfg);
}

TEST(ApiBitIdentity, Gat) {
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = 3;
  expect_bit_identity<api::Gat>(cfg);
  cfg.prereorganized = true;
  cfg.builtin_softmax = true;
  expect_bit_identity<api::Gat>(cfg);
}

TEST(ApiBitIdentity, EdgeConv) {
  EdgeConvConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden = {16, 16};
  cfg.num_classes = 10;
  expect_bit_identity<api::EdgeConv>(cfg);
}

TEST(ApiBitIdentity, MoNet) {
  MoNetConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.kernels = 2;
  cfg.pseudo_dim = 2;
  cfg.num_classes = 4;
  expect_bit_identity<api::MoNet>(cfg);
}

/// Frozen pre-refactor reference: the GCN builder exactly as models.cc
/// shipped it before the module migration (raw IrGraph calls, legacy flat
/// names). The module must reproduce its structure node for node; only the
/// debug names changed ("W0" -> "layer0.W"), which a name-stripped dump
/// makes explicit.
ModelGraph frozen_legacy_gcn(const GcnConfig& cfg, Rng& rng) {
  ModelGraph m;
  m.features = m.ir.input(Space::Vertex, 0, cfg.in_dim, "features");
  std::int64_t f_in = cfg.in_dim;
  int h = m.features;
  std::vector<std::int64_t> dims = cfg.hidden;
  dims.push_back(cfg.num_classes);
  for (std::size_t l = 0; l < dims.size(); ++l) {
    const std::int64_t f_out = dims[l];
    const std::string suffix = std::to_string(l);
    const int w = m.ir.param(f_in, f_out, "W" + suffix);
    m.params.push_back(w);
    m.init.push_back(Tensor::xavier(f_in, f_out, rng));
    const int b = m.ir.param(1, f_out, "b" + suffix);
    m.params.push_back(b);
    m.init.push_back(Tensor::zeros(1, f_out, MemTag::kWeights));
    const int proj = m.ir.linear(h, w, 0, 0, "proj" + suffix);
    const int msg = m.ir.scatter(ScatterFn::CopyU, proj, -1, "msg" + suffix);
    const int agg = m.ir.gather(ReduceFn::Sum, msg, false, "agg" + suffix);
    h = m.ir.bias(agg, b, "bias" + suffix);
    if (l + 1 < dims.size()) {
      h = m.ir.apply_unary(ApplyFn::ReLU, h, 0.f, "relu" + suffix);
    }
    f_in = f_out;
  }
  m.output = h;
  m.ir.mark_output(h);
  return m;
}

std::string structural_dump(const IrGraph& ir) {
  IrGraph copy = ir;
  for (int i = 0; i < copy.size(); ++i) copy.node_mut(i).name.clear();
  return copy.dump();
}

TEST(ApiBitIdentity, ModuleMatchesFrozenLegacyGcn) {
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16, 8};
  cfg.num_classes = 5;
  Rng r1(7);
  Rng r2(7);
  const ModelGraph frozen = frozen_legacy_gcn(cfg, r1);
  const ModelGraph module = api::Gcn(cfg).build(r2);
  EXPECT_EQ(structural_dump(frozen.ir), structural_dump(module.ir));
  EXPECT_EQ(frozen.params.size(), module.params.size());
  EXPECT_EQ(frozen.features, module.features);
  EXPECT_EQ(frozen.output, module.output);
  ASSERT_EQ(frozen.init.size(), module.init.size());
  for (std::size_t i = 0; i < frozen.init.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(frozen.init[i], module.init[i]), 0.f);
  }
}

// --- hierarchical naming -----------------------------------------------------

TEST(ApiNaming, NamedModuleScopesParameters) {
  GatConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = 3;
  cfg.prereorganized = true;
  Rng rng(3);
  const ModelGraph m = api::Gat(cfg, "gat").build(rng);
  std::vector<std::string> param_names;
  for (int p : m.params) param_names.push_back(m.ir.node(p).name);
  EXPECT_EQ(param_names[0], "gat.layer0.W");
  EXPECT_EQ(param_names[1], "gat.layer0.A");
  EXPECT_EQ(param_names[3], "gat.layer1.W");
  // Scoped op names too: the issue's canonical example.
  bool found_aL = false;
  for (const Node& n : m.ir.nodes()) found_aL |= n.name == "gat.layer0.aL";
  EXPECT_TRUE(found_aL);
  // Inputs stay at root scope — the harness binds them by name.
  EXPECT_EQ(m.ir.node(m.features).name, "features");
}

TEST(ApiNaming, ModulesComposeAsSubmodules) {
  // A custom module nesting two stock modules: parameters of each child are
  // scoped by the child's name.
  class TwoTower final : public api::Module {
   public:
    TwoTower() : Module("tower") {}
    std::string signature() const override { return "twotower"; }
    std::int64_t in_dim() const override { return 6; }
    Value forward(api::GraphBuilder& g, const Value& features,
                  const Value& pseudo) const override {
      GcnConfig cfg;
      cfg.in_dim = 6;
      cfg.hidden = {};
      cfg.num_classes = 4;
      const api::Gcn left(cfg, "left");
      const api::Gcn right(cfg, "right");
      // Sequence the towers explicitly: node order (and therefore Rng draw
      // order) must not depend on argument evaluation order.
      const Value l = left(g, features, pseudo);
      const Value r = right(g, features, pseudo);
      return api::add(l, r, "combine");
    }
  };
  Rng rng(3);
  const ModelGraph m = TwoTower().build(rng);
  std::vector<std::string> names;
  for (int p : m.params) names.push_back(m.ir.node(p).name);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "tower.left.layer0.W");
  EXPECT_EQ(names[2], "tower.right.layer0.W");
}

// --- Engine ------------------------------------------------------------------

TEST(ApiEngine, TrainerMatchesLegacyPath) {
  const Graph g = test_graph();
  Rng rng(5);
  Tensor features = Tensor::randn(g.num_vertices(), 8, rng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 5);
  }
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;

  // Legacy spelling.
  Rng mrng(1234);
  Compiled legacy = compile_model(build_gcn(cfg, mrng), ours(), true, g);
  Trainer t_legacy(std::move(legacy), g, features.clone());

  // Engine spelling (same init seed).
  api::CompileOptions opts;
  opts.strategy = ours();
  opts.init_seed = 1234;
  const api::Model model =
      api::Engine(opts).compile(std::make_shared<api::Gcn>(cfg));
  Trainer t_engine = model.trainer(g, features.clone());

  for (int step = 0; step < 3; ++step) {
    const float l1 = t_legacy.train_step(labels, 0.05f).loss;
    const float l2 = t_engine.train_step(labels, 0.05f).loss;
    EXPECT_EQ(l1, l2) << "step " << step;
  }
  EXPECT_EQ(ops::max_abs_diff(t_legacy.logits(), t_engine.logits()), 0.f);
}

TEST(ApiEngine, PlanCacheRoundTrip) {
  const Graph g = test_graph();
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;
  api::CompileOptions opts;
  opts.use_plan_cache = true;
  const api::Model model =
      api::Engine(opts).compile(std::make_shared<api::Gcn>(cfg));
  const auto c1 = model.compiled(g, /*training=*/true);
  const auto c2 = model.compiled(g, /*training=*/true);
  EXPECT_EQ(c1.get(), c2.get());  // same shared artifact, no recompile
  // A fresh Model with the same key shares through the global cache.
  const api::Model twin =
      api::Engine(opts).compile(std::make_shared<api::Gcn>(cfg));
  EXPECT_EQ(c1.get(), twin.compiled(g, true).get());
  // A different init seed carries different weights: never alias.
  api::CompileOptions reseeded = opts;
  reseeded.init_seed = opts.init_seed + 1;
  const api::Model other_weights =
      api::Engine(reseeded).compile(std::make_shared<api::Gcn>(cfg));
  EXPECT_NE(c1.get(), other_weights.compiled(g, true).get());
  // A different shard count is a different artifact.
  api::CompileOptions sharded = opts;
  sharded.shards = 2;
  const api::Model model2 =
      api::Engine(sharded).compile(std::make_shared<api::Gcn>(cfg));
  const auto c3 = model2.compiled(g, /*training=*/true);
  EXPECT_NE(c1.get(), c3.get());
  ASSERT_NE(c3->partition, nullptr);
  EXPECT_EQ(c3->partition->num_shards(), 2);
  // …and so is the same K under a different partition strategy.
  api::CompileOptions vrange = sharded;
  vrange.partition = PartitionStrategy::VertexRange;
  const api::Model model3 =
      api::Engine(vrange).compile(std::make_shared<api::Gcn>(cfg));
  const auto c4 = model3.compiled(g, /*training=*/true);
  EXPECT_NE(c3.get(), c4.get());
  EXPECT_EQ(c4->partition->strategy(), PartitionStrategy::VertexRange);
  PlanCache::global().clear();
}

TEST(ApiEngine, ModelMemoizesWithoutGlobalCache) {
  const Graph g = test_graph();
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;
  const api::Model model =
      api::Engine().compile(std::make_shared<api::Gcn>(cfg));  // no PlanCache
  const auto c1 = model.compiled(g, /*training=*/true);
  const auto c2 = model.compiled(g, /*training=*/true);
  EXPECT_EQ(c1.get(), c2.get());  // one pipeline run, shared by both
  EXPECT_NE(c1.get(), model.compiled(g, /*training=*/false).get());
}

TEST(ApiEngine, ShardedArtifactsArePinnedToTopology) {
  // Two graphs with identical shape but different adjacency.
  Rng r1(101);
  Rng r2(202);
  const Graph g1 = gen::erdos_renyi(24, 120, r1);
  const Graph g2 = gen::erdos_renyi(24, 120, r2);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  ASSERT_NE(g1.topology_fingerprint(), g2.topology_fingerprint());

  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {16};
  cfg.num_classes = 5;
  // Unsharded plans are shape-specialized only: equal shapes share.
  const api::Model shapewise =
      api::Engine().compile(std::make_shared<api::Gcn>(cfg));
  EXPECT_EQ(shapewise.compiled(g1, true).get(),
            shapewise.compiled(g2, true).get());
  // A sharded plan bakes g1's Partitioning; g2 must get its own.
  const api::Model sharded =
      api::Engine({.shards = 2}).compile(std::make_shared<api::Gcn>(cfg));
  const auto s1 = sharded.compiled(g1, true);
  const auto s2 = sharded.compiled(g2, true);
  EXPECT_NE(s1.get(), s2.get());
  EXPECT_NE(s1->partition.get(), s2->partition.get());
}

TEST(ApiEngine, ShardedTrainerBitIdentical) {
  const Graph g = test_graph();
  Rng rng(5);
  Tensor features = Tensor::randn(g.num_vertices(), 8, rng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden = {8};
  cfg.num_classes = 4;
  api::CompileOptions base;
  base.init_seed = 99;
  api::CompileOptions sharded = base;
  sharded.shards = 4;
  const auto module = std::make_shared<api::Gcn>(cfg);
  Trainer t1 = api::Engine(base).compile(module).trainer(g, features.clone());
  Trainer t4 = api::Engine(sharded).compile(module).trainer(g, features.clone());
  for (int step = 0; step < 2; ++step) {
    EXPECT_EQ(t1.train_step(labels, 0.05f).loss, t4.train_step(labels, 0.05f).loss);
  }
  EXPECT_EQ(ops::max_abs_diff(t1.logits(), t4.logits()), 0.f);
}

TEST(ApiEngine, ServerServesModule) {
  GcnConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden = {8};
  cfg.num_classes = 3;
  api::CompileOptions opts;
  opts.init_seed = 11;
  const api::Model model =
      api::Engine(opts).compile(std::make_shared<api::Gcn>(cfg));

  serve::BatchPolicy policy;
  policy.max_batch = 4;
  auto server = model.server(policy, /*workers=*/1);
  // The served identity pins the weights too: signature + init seed.
  EXPECT_EQ(server->model_name(), model.cache_identity());
  EXPECT_NE(server->model_name().find(model.module().signature()),
            std::string::npos);

  Rng rng(21);
  std::vector<std::future<serve::InferenceResult>> futures;
  for (int i = 0; i < 4; ++i) {
    serve::InferenceRequest req;
    req.graph = std::make_shared<const Graph>(test_graph());
    req.features = Tensor::randn(req.graph->num_vertices(), 4, rng);
    futures.push_back(server->submit(std::move(req)));
  }
  for (auto& f : futures) {
    const serve::InferenceResult r = f.get();
    EXPECT_EQ(r.output.rows(), 24);
    EXPECT_EQ(r.output.cols(), 3);
  }
  server->shutdown();
  EXPECT_EQ(server->stats().completed, 4u);
  PlanCache::global().clear();
}

}  // namespace
}  // namespace triad
