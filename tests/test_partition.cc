// Tests for the graph partitioning layer: range invariants, both strategies,
// halo/cut bookkeeping, ownership lookup, and the degenerate shapes the
// sharded runtime must survive (empty edge sets, isolated vertices,
// single-vertex shards, K > |V|).
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "graph/partition.h"
#include "support/rng.h"

namespace triad {
namespace {

void check_invariants(const Graph& g, const Partitioning& p) {
  // Owned ranges are contiguous, ascending, and cover [0, |V|) exactly.
  std::int64_t expect_lo = 0;
  std::int64_t vertices = 0, in_edges = 0, out_edges = 0;
  for (int s = 0; s < p.num_shards(); ++s) {
    const Shard& sh = p.shard(s);
    EXPECT_EQ(sh.id, s);
    EXPECT_EQ(sh.v_lo, expect_lo);
    EXPECT_LE(sh.v_lo, sh.v_hi);
    expect_lo = sh.v_hi;
    vertices += sh.num_vertices();
    in_edges += sh.num_in_edges();
    out_edges += sh.num_out_edges();
    // Local edge ranges agree with the CSR/CSC row boundaries.
    EXPECT_EQ(sh.e_in_lo, g.in_ptr()[sh.v_lo]);
    EXPECT_EQ(sh.e_in_hi, g.in_ptr()[sh.v_hi]);
    EXPECT_EQ(sh.e_out_lo, g.out_ptr()[sh.v_lo]);
    EXPECT_EQ(sh.e_out_hi, g.out_ptr()[sh.v_hi]);
    // Halo members are foreign and actually referenced by a local edge.
    for (std::int32_t h : sh.halo) EXPECT_FALSE(sh.owns(h));
  }
  EXPECT_EQ(p.shard(p.num_shards() - 1).v_hi, g.num_vertices());
  EXPECT_EQ(vertices, g.num_vertices());
  EXPECT_EQ(in_edges, g.num_edges());
  EXPECT_EQ(out_edges, g.num_edges());

  // Ownership: every vertex maps to the shard whose range contains it.
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(p.shard(p.owner_of(v)).owns(v)) << "vertex " << v;
  }

  // Cut edges counted from scratch agree with the rollup.
  std::int64_t cut = 0;
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    if (p.owner_of(g.edge_src()[e]) != p.owner_of(g.edge_dst()[e])) ++cut;
  }
  EXPECT_EQ(p.cut_edges(), cut);
}

TEST(Partition, VertexRangeInvariants) {
  Rng rng(3);
  Graph g = gen::erdos_renyi(100, 600, rng);
  for (int k : {1, 2, 4, 7, 100}) {
    check_invariants(
        g, Partitioning::build(g, k, PartitionStrategy::VertexRange));
  }
}

TEST(Partition, DegreeBalancedInvariants) {
  Rng rng(4);
  Graph g = gen::rmat(8, 4000, rng);  // skewed degrees stress balancing
  for (int k : {1, 2, 4, 8}) {
    check_invariants(
        g, Partitioning::build(g, k, PartitionStrategy::DegreeBalanced));
  }
}

TEST(Partition, DegreeBalancedBeatsVertexRangeOnSkew) {
  Rng rng(5);
  Graph g = gen::rmat(9, 8000, rng);
  const auto vr = Partitioning::build(g, 8, PartitionStrategy::VertexRange);
  const auto db = Partitioning::build(g, 8, PartitionStrategy::DegreeBalanced);
  // RMAT packs hubs at low ids, so equal vertex counts give a badly skewed
  // edge split; degree-balanced boundaries must do strictly better.
  EXPECT_LT(db.edge_imbalance(), vr.edge_imbalance());
}

TEST(Partition, SingleShardOwnsEverything) {
  Rng rng(6);
  Graph g = gen::erdos_renyi(30, 90, rng);
  const auto p = Partitioning::build(g, 1, PartitionStrategy::DegreeBalanced);
  EXPECT_EQ(p.num_shards(), 1);
  EXPECT_EQ(p.cut_edges(), 0);
  EXPECT_EQ(p.total_halo_vertices(), 0);
  EXPECT_TRUE(p.shard(0).halo.empty());
}

TEST(Partition, HaloMatchesCrossShardNeighbours) {
  // 0 -> 1 | 2 -> 3 with K=2 over [0,2) [2,4): the only crossing is 1->2.
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto p = Partitioning::build(g, 2, PartitionStrategy::VertexRange);
  EXPECT_EQ(p.cut_edges(), 1);
  EXPECT_EQ(p.shard(0).halo, (std::vector<std::int32_t>{2}));  // out-edge dst
  EXPECT_EQ(p.shard(1).halo, (std::vector<std::int32_t>{1}));  // in-edge src
  EXPECT_EQ(p.shard(0).cut_out_edges, 1);
  EXPECT_EQ(p.shard(1).cut_in_edges, 1);
}

TEST(Partition, MoreShardsThanVertices) {
  Graph g(3, {{0, 1}, {1, 2}});
  for (const auto strategy :
       {PartitionStrategy::VertexRange, PartitionStrategy::DegreeBalanced}) {
    const auto p = Partitioning::build(g, 8, strategy);
    check_invariants(g, p);
    EXPECT_EQ(p.num_shards(), 8);
    int nonempty = 0;
    for (int s = 0; s < 8; ++s) nonempty += p.shard(s).num_vertices() > 0;
    EXPECT_EQ(nonempty, 3);  // empty shards idle, never crash
  }
}

TEST(Partition, SingleVertexShards) {
  Graph g(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}});
  const auto p = Partitioning::build(g, 4, PartitionStrategy::VertexRange);
  check_invariants(g, p);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(p.shard(s).num_vertices(), 1);
  // Every edge crosses when each vertex is its own shard.
  EXPECT_EQ(p.cut_edges(), g.num_edges());
}

TEST(Partition, EdgelessGraphAndIsolatedVertices) {
  Graph g(10, {});  // no edges at all
  for (const auto strategy :
       {PartitionStrategy::VertexRange, PartitionStrategy::DegreeBalanced}) {
    const auto p = Partitioning::build(g, 4, strategy);
    check_invariants(g, p);
    EXPECT_EQ(p.cut_edges(), 0);
    EXPECT_EQ(p.total_halo_vertices(), 0);
    EXPECT_DOUBLE_EQ(p.edge_imbalance(), 1.0);
  }
}

TEST(Partition, ZeroShardsRejected) {
  Graph g(2, {{0, 1}});
  EXPECT_THROW(Partitioning::build(g, 0, PartitionStrategy::VertexRange), Error);
}

TEST(Partition, StatsString) {
  Rng rng(7);
  Graph g = gen::erdos_renyi(20, 60, rng);
  const auto p = Partitioning::build(g, 2, PartitionStrategy::DegreeBalanced);
  const std::string s = p.stats();
  EXPECT_NE(s.find("K=2"), std::string::npos);
  EXPECT_NE(s.find("degree-balanced"), std::string::npos);
}

}  // namespace
}  // namespace triad
