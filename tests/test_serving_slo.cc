// SLO-aware multi-model serving tests: the ServingHost front door.
//
// The properties pinned down here are the serving-layer contract of PR 8:
//  * multi-model batching keeps the bit-identity guarantee — every request
//    routed through the shared host equals its own standalone run exactly;
//  * priority lanes drain High before Normal before Low under a saturated
//    queue, deterministically (workers = 0, pump()-driven);
//  * admission control sheds Low-priority work at the configured queue-depth
//    threshold with exact counting (shed / rejected / submitted never blur);
//  * hot weight reload is atomic per batch — every response is computed
//    entirely under the old or entirely under the new weights, bitwise;
//  * the open-loop load generator is seeded-deterministic and its report
//    fields satisfy the accounting identities;
//  * an enabled SloPolicy provably engages inside the host (counted shrinks,
//    effective max-wait below the static knob).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/triad.h"
#include "graph/knn.h"
#include "models/models.h"
#include "serve/host.h"
#include "serve/loadgen.h"
#include "support/rng.h"

namespace triad {
namespace {

using serve::Admission;
using serve::InferenceRequest;
using serve::ModelOptions;
using serve::Priority;
using serve::ServingHost;

constexpr std::int64_t kInDim = 6;
constexpr std::int64_t kClasses = 4;

ModelGraph host_gcn() {
  GcnConfig cfg;
  cfg.in_dim = kInDim;
  cfg.hidden = {8};
  cfg.num_classes = kClasses;
  Rng rng(1234);  // fixed: every invocation yields bit-identical weights
  return build_gcn(cfg, rng);
}

ModelGraph host_gcn_v2() {
  GcnConfig cfg;
  cfg.in_dim = kInDim;
  cfg.hidden = {8};
  cfg.num_classes = kClasses;
  Rng rng(9999);  // same architecture, different weights: the reload target
  return build_gcn(cfg, rng);
}

ModelGraph host_gat() {
  GatConfig cfg;
  cfg.in_dim = kInDim;
  cfg.hidden = 4;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = kClasses;
  Rng rng(1234);
  return build_gat(cfg, rng);
}

InferenceRequest make_request(std::int64_t points, unsigned seed) {
  Rng rng(seed);
  const Tensor cloud = synthetic_point_cloud(points, 3, seed % 4, rng);
  InferenceRequest req;
  req.graph = std::make_shared<const Graph>(points, knn_edges(cloud, 3));
  req.features = Tensor(points, kInDim, MemTag::kInput);
  for (std::int64_t i = 0; i < req.features.numel(); ++i) {
    req.features.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return req;
}

InferenceRequest copy_of(const InferenceRequest& req) {
  InferenceRequest copy;
  copy.graph = req.graph;
  copy.features = req.features;  // shallow handle; payload shared
  copy.pseudo = req.pseudo;
  return copy;
}

Tensor run_standalone(ModelGraph model, const Strategy& s,
                      const InferenceRequest& req) {
  Compiled c =
      compile_model(std::move(model), s, /*training=*/false, *req.graph);
  PlanRunner runner(*req.graph, c.plan);
  runner.bind(c.features, req.features);
  for (std::size_t i = 0; i < c.params.size(); ++i) {
    runner.bind(c.params[i], c.init[i]);
  }
  runner.run();
  return runner.take_result(c.output);
}

void expect_bit_identical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs bitwise";
}

bool matches_bitwise(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// --- multi-model bit identity -----------------------------------------------

TEST(ServingHost, MultiModelBitIdentity) {
  // Two models behind one front door, served by shared workers: every
  // request's output must equal its own standalone run to the last bit —
  // multi-model batching is still exactly solo execution per request.
  serve::HostConfig cfg;
  cfg.workers = 2;
  ServingHost host(cfg);
  ModelOptions mo;
  mo.batch.max_batch = 3;
  mo.batch.max_wait_us = 200;
  host.register_model("slohost/gcn", host_gcn, mo);
  host.register_model("slohost/gat", host_gat, mo);

  constexpr int kPerModel = 8;
  std::vector<InferenceRequest> reqs;
  std::vector<Tensor> expected;
  std::vector<std::string> model_of;
  for (int i = 0; i < kPerModel; ++i) {
    InferenceRequest g = make_request(12, 700 + static_cast<unsigned>(i));
    expected.push_back(run_standalone(host_gcn(), ours(), g));
    model_of.push_back("slohost/gcn");
    reqs.push_back(std::move(g));
    InferenceRequest a = make_request(10, 800 + static_cast<unsigned>(i));
    expected.push_back(run_standalone(host_gat(), ours(), a));
    model_of.push_back("slohost/gat");
    reqs.push_back(std::move(a));
  }

  std::vector<std::future<serve::InferenceResult>> futures;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    futures.push_back(host.submit(model_of[i], std::move(reqs[i])));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::InferenceResult res = futures[i].get();
    expect_bit_identical(res.output, expected[i], model_of[i].c_str());
  }
  host.shutdown();

  const serve::HostStats hs = host.stats();
  EXPECT_EQ(hs.total.submitted, static_cast<std::uint64_t>(2 * kPerModel));
  EXPECT_EQ(hs.total.completed, static_cast<std::uint64_t>(2 * kPerModel));
  EXPECT_EQ(hs.total.failed, 0u);
  EXPECT_EQ(hs.models.at("slohost/gcn").completed,
            static_cast<std::uint64_t>(kPerModel));
  EXPECT_EQ(hs.models.at("slohost/gat").completed,
            static_cast<std::uint64_t>(kPerModel));
  // Every batch is single-model: total latency accounting stays per model.
  EXPECT_EQ(hs.total.latency.count, static_cast<std::uint64_t>(2 * kPerModel));
}

TEST(ServingHost, UnknownModelAndShutdownThrow) {
  ServingHost host({.workers = 0});
  host.register_model("slohost/known", host_gcn);
  EXPECT_THROW(host.submit("slohost/unknown", make_request(8, 1)), Error);
  host.shutdown();
  EXPECT_THROW(host.submit("slohost/known", make_request(8, 1)), Error);
  EXPECT_THROW(host.register_model("slohost/late", host_gcn), Error);
}

// --- priorities under a saturated queue --------------------------------------

TEST(ServingHost, PriorityOrderingUnderSaturatedQueue) {
  // workers = 0: nothing drains the queue until pump(), so the saturation is
  // deterministic. Five requests across three priorities, max_batch = 3,
  // zero wait: the first pump must serve exactly {High, High, Normal}.
  ServingHost host({.workers = 0});
  ModelOptions mo;
  mo.batch.max_batch = 3;
  mo.batch.max_wait_us = 0;
  mo.batch.queue_capacity = 16;
  mo.shed_fraction = 1.0;  // shedding off: this test is about ordering
  host.register_model("slohost/prio", host_gcn, mo);

  const InferenceRequest req = make_request(8, 42);
  auto low1 = host.submit("slohost/prio", copy_of(req), Priority::Low);
  auto low2 = host.submit("slohost/prio", copy_of(req), Priority::Low);
  auto normal = host.submit("slohost/prio", copy_of(req), Priority::Normal);
  auto high1 = host.submit("slohost/prio", copy_of(req), Priority::High);
  auto high2 = host.submit("slohost/prio", copy_of(req), Priority::High);

  ASSERT_TRUE(host.pump());  // one batch: the three highest-priority items
  const auto ready = [](std::future<serve::InferenceResult>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  EXPECT_TRUE(ready(high1));
  EXPECT_TRUE(ready(high2));
  EXPECT_TRUE(ready(normal));
  EXPECT_FALSE(ready(low1));
  EXPECT_FALSE(ready(low2));
  EXPECT_EQ(high1.get().batch_size, 3);

  ASSERT_TRUE(host.pump());  // the two Low stragglers
  EXPECT_TRUE(ready(low1));
  EXPECT_TRUE(ready(low2));
  EXPECT_EQ(low1.get().batch_size, 2);
  EXPECT_FALSE(host.pump());  // drained

  const serve::ServerStats s = host.stats("slohost/prio");
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.batches, 2u);
  ASSERT_GT(s.batch_size_hist.size(), 3u);
  EXPECT_EQ(s.batch_size_hist[3], 1u);
  EXPECT_EQ(s.batch_size_hist[2], 1u);
}

// --- admission control -------------------------------------------------------

TEST(ServingHost, SheddingCountedExactly) {
  // capacity 8, shed threshold 0.5 -> Low is shed at depth >= 4. workers = 0
  // keeps the depth exact during admission.
  ServingHost host({.workers = 0});
  ModelOptions mo;
  mo.batch.max_batch = 8;
  mo.batch.max_wait_us = 0;
  mo.batch.queue_capacity = 8;
  mo.shed_fraction = 0.5;
  host.register_model("slohost/shed", host_gcn, mo);

  const InferenceRequest req = make_request(8, 43);
  std::vector<std::future<serve::InferenceResult>> accepted;

  // Below the threshold, Low is admitted like anyone else.
  std::future<serve::InferenceResult> fut;
  ASSERT_EQ(host.try_submit("slohost/shed", copy_of(req), Priority::Low, &fut),
            Admission::Accepted);
  accepted.push_back(std::move(fut));

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        host.try_submit("slohost/shed", copy_of(req), Priority::Normal, &fut),
        Admission::Accepted);
    accepted.push_back(std::move(fut));
  }
  // Depth is now 4 = threshold: every Low submission is shed, exactly.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(host.try_submit("slohost/shed", copy_of(req), Priority::Low, &fut),
              Admission::Shed);
  }
  // Normal and High are not subject to shedding — they fill to capacity...
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(
        host.try_submit("slohost/shed", copy_of(req), Priority::High, &fut),
        Admission::Accepted);
    accepted.push_back(std::move(fut));
  }
  // ...and the queue-full refusal is counted as rejected, not shed.
  EXPECT_EQ(host.try_submit("slohost/shed", copy_of(req), Priority::High, &fut),
            Admission::Rejected);

  serve::ServerStats s = host.stats("slohost/shed");
  EXPECT_EQ(s.submitted, 8u);
  EXPECT_EQ(s.shed, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.queue_depth, 8u);

  while (host.pump()) {
  }
  for (auto& f : accepted) f.get();  // everything admitted is served
  s = host.stats("slohost/shed");
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.shed, 3u);  // draining does not invent or lose shed counts
}

// --- hot weight reload -------------------------------------------------------

TEST(ServingHost, HotReloadAtomicity) {
  // Stream identical requests through live workers while swapping weights
  // mid-stream. Every single response must equal the v1 or the v2 standalone
  // output bitwise — a torn read (half-old, half-new weights) matches
  // neither and fails loudly.
  const InferenceRequest req = make_request(12, 77);
  const Tensor expected_v1 = run_standalone(host_gcn(), ours(), req);
  const Tensor expected_v2 = run_standalone(host_gcn_v2(), ours(), req);
  ASSERT_FALSE(matches_bitwise(expected_v1, expected_v2))
      << "reload test needs distinguishable weight versions";

  serve::HostConfig cfg;
  cfg.workers = 2;
  ServingHost host(cfg);
  ModelOptions mo;
  mo.batch.max_batch = 4;
  mo.batch.max_wait_us = 100;
  mo.batch.queue_capacity = 256;
  host.register_model("slohost/reload", host_gcn, mo);

  constexpr int kRequests = 48;
  std::vector<std::future<serve::InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(host.submit("slohost/reload", copy_of(req)));
    if (i == kRequests / 2) host.reload("slohost/reload", host_gcn_v2);
  }
  int v1 = 0, v2 = 0;
  for (auto& f : futures) {
    const Tensor out = f.get().output;
    if (matches_bitwise(out, expected_v1)) {
      ++v1;
    } else if (matches_bitwise(out, expected_v2)) {
      ++v2;
    } else {
      FAIL() << "response matches neither weight version — torn reload";
    }
  }
  EXPECT_EQ(v1 + v2, kRequests);
  EXPECT_GT(v2, 0) << "post-reload requests must see the new weights";
  host.shutdown();

  const serve::ServerStats s = host.stats("slohost/reload");
  EXPECT_EQ(s.reloads, 1u);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0u);
}

TEST(ServingHost, ReloadRestoresDeterministicWeights) {
  // The api::Model path: register_with() names the model by cache_identity()
  // and its builder re-seeds, so reload() restores pristine init weights and
  // outputs stay bit-identical across the swap.
  GcnConfig gcfg;
  gcfg.in_dim = kInDim;
  gcfg.hidden = {8};
  gcfg.num_classes = kClasses;
  api::CompileOptions co;
  co.init_seed = 777;
  const api::Model model =
      api::Engine(co).compile(std::make_shared<api::Gcn>(gcfg));

  ServingHost host({.workers = 0});
  const std::string name = model.register_with(host);
  EXPECT_EQ(name, model.cache_identity());

  const InferenceRequest req = make_request(9, 21);
  auto before = host.submit(name, copy_of(req));
  while (host.pump()) {
  }
  host.reload(name);
  auto after = host.submit(name, copy_of(req));
  while (host.pump()) {
  }
  expect_bit_identical(after.get().output, before.get().output,
                       "seeded reload changed the weights");
  EXPECT_EQ(host.stats(name).reloads, 1u);
}

// --- SLO controller engagement inside the host -------------------------------

TEST(ServingHost, SloControllerEngagesUnderImpossibleTarget) {
  // A 1 us p99 target is unmeetable, so the controller must shrink the
  // effective max-wait below the static knob — counted, observable via
  // stats(), and clamped at the configured floor.
  serve::HostConfig cfg;
  cfg.workers = 1;
  ServingHost host(cfg);
  ModelOptions mo;
  mo.batch.max_batch = 4;
  mo.batch.max_wait_us = 500;
  mo.slo.enabled = true;
  mo.slo.target_p99_us = 1;
  mo.slo.min_samples = 1;
  mo.slo.window = 16;
  host.register_model("slohost/tight", host_gcn, mo);

  const InferenceRequest req = make_request(8, 5);
  for (int i = 0; i < 12; ++i) {
    host.submit("slohost/tight", copy_of(req)).get();
  }
  host.shutdown();

  const serve::ServerStats s = host.stats("slohost/tight");
  EXPECT_GE(s.slo_shrinks, 1u);
  EXPECT_LT(s.eff_max_wait_us, 500);
  EXPECT_GE(s.eff_max_wait_us, 0);
  EXPECT_GE(s.eff_max_batch, 1);
}

// --- the open-loop load generator --------------------------------------------

TEST(Loadgen, SeededSmokeWithConsistentAccounting) {
  serve::HostConfig cfg;
  cfg.workers = 2;
  ServingHost host(cfg);
  ModelOptions mo;
  mo.batch.max_batch = 4;
  mo.batch.max_wait_us = 100;
  mo.batch.queue_capacity = 16;
  mo.shed_fraction = 0.75;
  host.register_model("slohost/lg-gcn", host_gcn, mo);
  host.register_model("slohost/lg-gat", host_gat, mo);

  std::vector<serve::TrafficClass> classes(2);
  classes[0].model = "slohost/lg-gcn";
  classes[0].weight = 0.7;
  classes[1].model = "slohost/lg-gat";
  classes[1].weight = 0.3;
  for (unsigned i = 0; i < 4; ++i) {
    classes[0].requests.push_back(make_request(8 + 2 * i, 900 + i));
    classes[1].requests.push_back(make_request(8 + 2 * i, 950 + i));
  }

  serve::LoadSpec spec;
  spec.rate_rps = 2000;
  spec.total_requests = 60;
  spec.seed = 7;
  spec.slo_seconds = 0.05;
  spec.high_fraction = 0.2;
  spec.low_fraction = 0.3;

  const serve::LoadReport r = serve::run_open_loop(host, classes, spec);
  host.shutdown();

  EXPECT_EQ(r.offered, 60u);
  EXPECT_EQ(r.offered, r.accepted + r.shed + r.rejected);
  EXPECT_EQ(r.accepted, r.completed + r.failed);
  EXPECT_LE(r.good, r.completed);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.slo_seconds, 0.05);
  EXPECT_GE(r.goodput_rps(), 0.0);

  std::uint64_t offered = 0, accepted = 0, shed = 0, rejected = 0,
                completed = 0, good = 0;
  for (const auto& [name, m] : r.models) {
    EXPECT_EQ(m.offered, m.accepted + m.shed + m.rejected) << name;
    EXPECT_EQ(m.accepted, m.completed + m.failed) << name;
    EXPECT_EQ(m.latency.count, m.completed) << name;
    offered += m.offered;
    accepted += m.accepted;
    shed += m.shed;
    rejected += m.rejected;
    completed += m.completed;
    good += m.good;
  }
  EXPECT_EQ(offered, r.offered);
  EXPECT_EQ(accepted, r.accepted);
  EXPECT_EQ(shed, r.shed);
  EXPECT_EQ(rejected, r.rejected);
  EXPECT_EQ(completed, r.completed);
  EXPECT_EQ(good, r.good);

  // The host's own books agree with the client's.
  const serve::HostStats hs = host.stats();
  EXPECT_EQ(hs.total.submitted, r.accepted);
  EXPECT_EQ(hs.total.completed, r.completed);
  EXPECT_EQ(hs.total.shed, r.shed);
  EXPECT_EQ(hs.total.rejected, r.rejected);
}

TEST(Loadgen, DecisionSequenceIsSeedDeterministic) {
  // Arrival timestamps are wall-clock, but the (model, template, priority)
  // sequence is a pure function of the seed: the per-model offered counts
  // must replay exactly across runs.
  auto offered_split = [] {
    ServingHost host({.workers = 1});
    ModelOptions mo;
    mo.batch.queue_capacity = 256;
    host.register_model("det/a", host_gcn, mo);
    host.register_model("det/b", host_gat, mo);
    std::vector<serve::TrafficClass> classes(2);
    classes[0].model = "det/a";
    classes[0].weight = 0.5;
    classes[0].requests.push_back(make_request(8, 1));
    classes[1].model = "det/b";
    classes[1].weight = 0.5;
    classes[1].requests.push_back(make_request(8, 2));
    serve::LoadSpec spec;
    spec.rate_rps = 5000;
    spec.total_requests = 40;
    spec.seed = 99;
    const serve::LoadReport r = serve::run_open_loop(host, classes, spec);
    host.shutdown();
    return std::pair<std::uint64_t, std::uint64_t>(
        r.models.at("det/a").offered, r.models.at("det/b").offered);
  };
  // Distinct model names per invocation would collide in the PlanCache name
  // space harmlessly (same builder), so reuse is fine here.
  const auto first = offered_split();
  const auto second = offered_split();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first + first.second, 40u);
}

}  // namespace
}  // namespace triad
