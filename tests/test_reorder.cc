// Tests for graph reordering: permutation validity and model invariance
// (reordering may change layout/locality but never results).
#include <gtest/gtest.h>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "ir/graph.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

TEST(Reorder, DegreeOrderingIsPermutation) {
  Rng rng(1);
  Graph g = gen::rmat(8, 2000, rng);
  Permutation p = degree_ordering(g);
  EXPECT_TRUE(is_permutation(p));
}

TEST(Reorder, DegreeOrderingPutsHubsFirst) {
  Rng rng(2);
  Graph g = gen::rmat(8, 2000, rng);
  Permutation p = degree_ordering(g);
  // The vertex ranked 0 must have max total degree.
  std::int64_t best = 0;
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, g.in_degree(v) + g.out_degree(v));
  }
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    if (p[v] == 0) {
      EXPECT_EQ(g.in_degree(v) + g.out_degree(v), best);
    }
  }
}

TEST(Reorder, BfsClusteringIsPermutation) {
  Rng rng(3);
  Graph g = gen::erdos_renyi(200, 600, rng);
  Permutation p = bfs_clustering(g);
  EXPECT_TRUE(is_permutation(p));
}

TEST(Reorder, BfsClusteringKeepsComponentsContiguous) {
  // Two disjoint cliques -> ids of each clique must form a contiguous range.
  std::vector<Edge> edges;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        edges.push_back({a, b});
        edges.push_back({a + 4, b + 4});
      }
    }
  }
  Graph g(8, edges);
  Permutation p = bfs_clustering(g);
  ASSERT_TRUE(is_permutation(p));
  std::int32_t max_first = -1, min_second = 8;
  for (int v = 0; v < 4; ++v) max_first = std::max(max_first, p[v]);
  for (int v = 4; v < 8; ++v) min_second = std::min(min_second, p[v]);
  EXPECT_LT(max_first, min_second);
}

TEST(Reorder, PermuteGraphPreservesEdgeMultiset) {
  Rng rng(4);
  Graph g = gen::erdos_renyi(50, 300, rng);
  Permutation p = bfs_clustering(g);
  Graph h = permute_graph(g, p);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Edge e maps endpoint-wise.
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_src()[e], p[g.edge_src()[e]]);
    EXPECT_EQ(h.edge_dst()[e], p[g.edge_dst()[e]]);
  }
}

TEST(Reorder, PermuteRowsRoundTrip) {
  Rng rng(5);
  Tensor t = Tensor::randn(20, 3, rng);
  Permutation p(20);
  for (int i = 0; i < 20; ++i) p[i] = (i * 7) % 20;
  ASSERT_TRUE(is_permutation(p));
  Tensor moved = permute_rows(t, p);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(moved.at(p[i], j), t.at(i, j));
  }
}

TEST(Reorder, EdgelessGraphOrderings) {
  // No edges: degree ordering is a stable identity-ish ranking, BFS visits
  // every singleton component, and permuting is a no-op on edges.
  Graph g(6, {});
  Permutation d = degree_ordering(g);
  Permutation b = bfs_clustering(g);
  EXPECT_TRUE(is_permutation(d));
  EXPECT_TRUE(is_permutation(b));
  // All degrees tie, so stable sort keeps the identity.
  for (int v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
  Graph h = permute_graph(g, b);
  EXPECT_EQ(h.num_edges(), 0);
  EXPECT_EQ(h.num_vertices(), 6);
}

TEST(Reorder, IsolatedVerticesGetIdsAfterTheirDiscovery) {
  // 0-1 connected, 2 isolated, 3-4 connected: BFS clustering must assign
  // every isolated vertex its own cluster without skipping ids.
  Graph g(5, {{0, 1}, {3, 4}});
  Permutation p = bfs_clustering(g);
  ASSERT_TRUE(is_permutation(p));
  // Cluster starts follow root order 0, 2, 3; members stay contiguous.
  EXPECT_LT(std::max(p[0], p[1]), p[2]);
  EXPECT_LT(p[2], std::min(p[3], p[4]));
}

TEST(Reorder, SingleVertexGraphOrderings) {
  Graph g(1, {{0, 0}});  // one vertex, one self-loop
  Permutation d = degree_ordering(g);
  Permutation b = bfs_clustering(g);
  EXPECT_EQ(d, Permutation{0});
  EXPECT_EQ(b, Permutation{0});
  Graph h = permute_graph(g, d);
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.edge_src()[0], 0);
}

TEST(Reorder, PermuteRowsOnEmptyTensor) {
  Tensor t(0, 3, MemTag::kWorkspace);
  Permutation p;
  Tensor out = permute_rows(t, p);
  EXPECT_EQ(out.rows(), 0);
  EXPECT_EQ(out.cols(), 3);
}

TEST(Reorder, IsPermutationRejectsBadVectors) {
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 2}));
  EXPECT_FALSE(is_permutation({-1, 0}));
  EXPECT_TRUE(is_permutation({2, 0, 1}));
}

TEST(Reorder, ModelResultsInvariantUnderReordering) {
  // Running the same GNN on a reordered graph with reordered features must
  // give the reordered outputs (reordering is a pure layout change).
  Rng rng(6);
  Graph g = gen::rmat(6, 400, rng);
  const std::int64_t f = 5;
  Tensor x = Tensor::randn(g.num_vertices(), f, rng);

  IrGraph ir;
  const int xin = ir.input(Space::Vertex, 0, f, "x");
  const int e = ir.scatter(ScatterFn::SubUV, xin, xin);
  const int r = ir.apply_unary(ApplyFn::LeakyReLU, e, 0.2f);
  const int out = ir.gather(ReduceFn::Sum, r);
  ir.mark_output(out);

  Executor ex(g, ir);
  ex.bind(xin, x);
  ex.run();
  Tensor base = ex.result(out).clone();

  Permutation p = bfs_clustering(g);
  Graph pg = permute_graph(g, p);
  Executor ex2(pg, ir);
  ex2.bind(xin, permute_rows(x, p));
  ex2.run();
  Tensor permuted_out = ex2.result(out).clone();

  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    for (std::int64_t j = 0; j < f; ++j) {
      EXPECT_NEAR(permuted_out.at(p[v], j), base.at(v, j), 1e-4f);
    }
  }
}

}  // namespace
}  // namespace triad
