// The central correctness property of the whole system: every execution
// strategy (DGL-like, fuseGNN-like, Ours, and all ablations) computes the
// SAME logits and the SAME parameter gradients for the same model and
// weights. Optimizations may only change cost, never semantics.
#include <gtest/gtest.h>

#include <functional>

#include "baselines/strategy.h"
#include "engine/executor.h"
#include "graph/generators.h"
#include "models/models.h"
#include "models/trainer.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace triad {
namespace {

Graph test_graph() {
  Rng rng(301);
  return gen::erdos_renyi(24, 150, rng);
}

struct RunResult {
  Tensor logits;
  std::vector<Tensor> grads;
  float loss;
};

/// Builds the model fresh (seeded), compiles under `s`, runs one training
/// step with lr=0 (pure gradient computation) and returns logits + grads.
RunResult run_strategy(
    const Strategy& s,
    const std::function<ModelGraph(Rng&, const Strategy&)>& build,
    const Graph& g, const Tensor& features, const IntTensor& labels,
    Tensor pseudo = {}) {
  Rng rng(4242);  // identical initial weights across strategies
  ModelGraph m = build(rng, s);
  Compiled c = compile_model(std::move(m), s, /*training=*/true);
  MemoryPool pool;
  Trainer trainer(std::move(c), g, features.clone(MemTag::kInput, &pool),
                  pseudo.defined() ? pseudo.clone(MemTag::kInput, &pool) : Tensor{},
                  &pool);
  StepMetrics metrics = trainer.train_step(labels, /*lr=*/0.f);
  RunResult r;
  r.loss = metrics.loss;
  r.logits = trainer.logits().clone();
  for (int gnode : trainer.model().param_grads) {
    r.grads.push_back(trainer.executor().result(gnode).clone());
  }
  return r;
}

void expect_equivalent(const RunResult& a, const RunResult& b,
                       const std::string& label, float tol = 5e-3f) {
  EXPECT_NEAR(a.loss, b.loss, 1e-3f) << label;
  EXPECT_LT(ops::max_abs_diff(a.logits, b.logits), tol) << label << " logits";
  ASSERT_EQ(a.grads.size(), b.grads.size()) << label;
  for (std::size_t i = 0; i < a.grads.size(); ++i) {
    // Gradients can be small; compare with mixed tolerance.
    EXPECT_TRUE(ops::allclose(a.grads[i], b.grads[i], tol, 1e-2f))
        << label << " grad " << i << " max|diff|="
        << ops::max_abs_diff(a.grads[i], b.grads[i]);
  }
}

std::vector<Strategy> all_strategies() {
  return {naive(),          dgl_like(),       fusegnn_like(),
          ours(),           ours_no_reorg(),  ours_no_fusion(),
          ours_fusion_stash(), ours_no_optimize()};
}

TEST(Equivalence, GatAllStrategiesAgree) {
  Graph g = test_graph();
  Rng drng(7);
  Tensor features = Tensor::randn(g.num_vertices(), 10, drng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  auto build = [](Rng& rng, const Strategy& s) {
    GatConfig cfg;
    cfg.in_dim = 10;
    cfg.hidden = 12;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.num_classes = 4;
    cfg.prereorganized = s.prereorganized_gat;
    cfg.builtin_softmax = s.builtin_softmax;
    return build_gat(cfg, rng);
  };
  const auto strategies = all_strategies();
  const RunResult ref = run_strategy(strategies[0], build, g, features, labels);
  for (std::size_t i = 1; i < strategies.size(); ++i) {
    const RunResult r = run_strategy(strategies[i], build, g, features, labels);
    expect_equivalent(ref, r, "GAT vs " + strategies[i].name);
  }
}

TEST(Equivalence, EdgeConvAllStrategiesAgree) {
  Graph g = test_graph();
  Rng drng(8);
  Tensor features = Tensor::randn(g.num_vertices(), 3, drng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 5);
  }
  auto build = [](Rng& rng, const Strategy&) {
    EdgeConvConfig cfg;
    cfg.in_dim = 3;
    cfg.hidden = {8, 12};
    cfg.num_classes = 5;
    return build_edgeconv(cfg, rng);
  };
  const auto strategies = all_strategies();
  const RunResult ref = run_strategy(strategies[0], build, g, features, labels);
  for (std::size_t i = 1; i < strategies.size(); ++i) {
    const RunResult r = run_strategy(strategies[i], build, g, features, labels);
    expect_equivalent(ref, r, "EdgeConv vs " + strategies[i].name);
  }
}

TEST(Equivalence, MoNetAllStrategiesAgree) {
  Graph g = test_graph();
  Rng drng(9);
  Tensor features = Tensor::randn(g.num_vertices(), 6, drng);
  Tensor pseudo = make_pseudo_coords(g, 2);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 3);
  }
  auto build = [](Rng& rng, const Strategy&) {
    MoNetConfig cfg;
    cfg.in_dim = 6;
    cfg.hidden = 8;
    cfg.kernels = 2;
    cfg.pseudo_dim = 2;
    cfg.num_classes = 3;
    return build_monet(cfg, rng);
  };
  const auto strategies = all_strategies();
  const RunResult ref = run_strategy(strategies[0], build, g, features, labels,
                                     pseudo);
  for (std::size_t i = 1; i < strategies.size(); ++i) {
    const RunResult r =
        run_strategy(strategies[i], build, g, features, labels, pseudo);
    expect_equivalent(ref, r, "MoNet vs " + strategies[i].name);
  }
}

TEST(Equivalence, GcnOursMatchesNaive) {
  Graph g = test_graph();
  Rng drng(10);
  Tensor features = Tensor::randn(g.num_vertices(), 8, drng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  auto build = [](Rng& rng, const Strategy&) {
    GcnConfig cfg;
    cfg.in_dim = 8;
    cfg.hidden = {12};
    cfg.num_classes = 4;
    return build_gcn(cfg, rng);
  };
  const RunResult a = run_strategy(naive(), build, g, features, labels);
  const RunResult b = run_strategy(ours(), build, g, features, labels);
  expect_equivalent(a, b, "GCN naive vs ours");
}

TEST(Equivalence, EdgeBalancedMappingAgrees) {
  // Force the edge-balanced preference: results must not change.
  Graph g = test_graph();
  Rng drng(11);
  Tensor features = Tensor::randn(g.num_vertices(), 8, drng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  auto build = [](Rng& rng, const Strategy&) {
    GcnConfig cfg;
    cfg.in_dim = 8;
    cfg.hidden = {12};
    cfg.num_classes = 4;
    return build_gcn(cfg, rng);
  };
  Strategy eb = ours();
  eb.mapping = WorkMapping::EdgeBalanced;
  const RunResult a = run_strategy(ours(), build, g, features, labels);
  const RunResult b = run_strategy(eb, build, g, features, labels);
  expect_equivalent(a, b, "vertex- vs edge-balanced");
}

// --- optimizer on/off bit-identity ------------------------------------------
//
// The generic optimizer (CSE/DCE/simplify) may only remove work, never
// change float semantics: every rewrite it applies is IEEE-exact. So for
// every model, fused or unfused, sharded or not, the optimized pipeline must
// produce the same logits and parameter-gradient values as the unoptimized
// one — compared with exact float equality, not a tolerance.

struct ModelCase {
  std::string name;
  std::function<ModelGraph(Rng&)> build;
  std::int64_t in_dim = 0;
  bool pseudo = false;
};

std::vector<ModelCase> optimizer_model_cases() {
  std::vector<ModelCase> cases;
  cases.push_back({"gcn",
                   [](Rng& rng) {
                     GcnConfig cfg;
                     cfg.in_dim = 8;
                     cfg.hidden = {12};
                     cfg.num_classes = 4;
                     return build_gcn(cfg, rng);
                   },
                   8, false});
  cases.push_back({"gat",
                   [](Rng& rng) {
                     GatConfig cfg;
                     cfg.in_dim = 10;
                     cfg.hidden = 12;
                     cfg.heads = 2;
                     cfg.layers = 2;
                     cfg.num_classes = 4;
                     return build_gat(cfg, rng);
                   },
                   10, false});
  cases.push_back({"monet",
                   [](Rng& rng) {
                     MoNetConfig cfg;
                     cfg.in_dim = 6;
                     cfg.hidden = 8;
                     cfg.kernels = 2;
                     cfg.pseudo_dim = 2;
                     cfg.num_classes = 3;
                     return build_monet(cfg, rng);
                   },
                   6, true});
  cases.push_back({"edgeconv",
                   [](Rng& rng) {
                     EdgeConvConfig cfg;
                     cfg.in_dim = 3;
                     cfg.hidden = {8, 12};
                     cfg.num_classes = 5;
                     return build_edgeconv(cfg, rng);
                   },
                   3, false});
  return cases;
}

void expect_exactly_equal(const Tensor& a, const Tensor& b,
                          const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.cols(), b.cols()) << label;
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.f) << label;
}

TEST(Equivalence, OptimizerOnOffBitIdentical) {
  Graph g = test_graph();
  Rng drng(21);
  const auto cases = optimizer_model_cases();
  for (const ModelCase& mc : cases) {
    Tensor features = Tensor::randn(g.num_vertices(), mc.in_dim, drng);
    Tensor pseudo = mc.pseudo ? make_pseudo_coords(g, 2) : Tensor{};
    IntTensor labels(g.num_vertices(), 1);
    for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
      labels.at(v, 0) = static_cast<std::int32_t>(v % 3);
    }
    for (const bool fused : {true, false}) {
      for (const int shards : {1, 4}) {
        const Strategy base = fused ? ours() : ours_no_fusion();
        Strategy on = base;
        Strategy off = base;
        off.optimize = false;

        auto run = [&](const Strategy& s) {
          Rng rng(4242);
          Compiled c =
              compile_model(mc.build(rng), s, /*training=*/true, g, shards);
          MemoryPool pool;
          Trainer trainer(std::move(c), g,
                          features.clone(MemTag::kInput, &pool),
                          pseudo.defined() ? pseudo.clone(MemTag::kInput, &pool)
                                           : Tensor{},
                          &pool);
          trainer.train_step(labels, /*lr=*/0.f);
          RunResult r;
          r.logits = trainer.logits().clone();
          for (int gnode : trainer.model().param_grads) {
            r.grads.push_back(trainer.executor().result(gnode).clone());
          }
          return r;
        };
        const RunResult with = run(on);
        const RunResult without = run(off);
        const std::string label = mc.name + (fused ? "/fused" : "/unfused") +
                                  "/K=" + std::to_string(shards);
        expect_exactly_equal(with.logits, without.logits, label + " logits");
        ASSERT_EQ(with.grads.size(), without.grads.size()) << label;
        for (std::size_t i = 0; i < with.grads.size(); ++i) {
          expect_exactly_equal(with.grads[i], without.grads[i],
                               label + " grad " + std::to_string(i));
        }
      }
    }
  }
}

TEST(Equivalence, OursUsesLessStashMemoryOnGat) {
  // The qualitative Fig. 10 claim at unit-test scale: fusion+recompute stash
  // < fusion+stash stash < unfused stash.
  Graph g = test_graph();
  Rng drng(12);
  Tensor features = Tensor::randn(g.num_vertices(), 10, drng);
  IntTensor labels(g.num_vertices(), 1);
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    labels.at(v, 0) = static_cast<std::int32_t>(v % 4);
  }
  auto build = [](Rng& rng, const Strategy& s) {
    GatConfig cfg;
    cfg.in_dim = 10;
    cfg.hidden = 16;
    cfg.layers = 1;
    cfg.num_classes = 4;
    cfg.prereorganized = s.prereorganized_gat;
    cfg.builtin_softmax = s.builtin_softmax;
    return build_gat(cfg, rng);
  };
  auto stash_of = [&](const Strategy& s) {
    Rng rng(4242);
    ModelGraph m = build(rng, s);
    Compiled c = compile_model(std::move(m), s, true);
    MemoryPool pool;
    Trainer t(std::move(c), g, features.clone(MemTag::kInput, &pool), Tensor{},
              &pool);
    t.train_step(labels, 0.f);
    return pool.peak_breakdown(MemTag::kStash);
  };
  const std::size_t unfused = stash_of(ours_no_fusion());
  const std::size_t stash = stash_of(ours_fusion_stash());
  const std::size_t recompute = stash_of(ours());
  EXPECT_LT(recompute, stash);
  EXPECT_LE(stash, unfused);
}

}  // namespace
}  // namespace triad
