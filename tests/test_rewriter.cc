// Rewriter framework + optimizer pass tests: rule units, hash-consing CSE,
// DCE/id-compaction invariants (including fused-program pruning), fixpoint
// termination on an adversarial cyclic-rewrite trap, and the end-to-end
// node-count reduction the optimizer must deliver on the GAT backward graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/strategy.h"
#include "ir/autodiff.h"
#include "ir/passes/fusion.h"
#include "ir/passes/rewriter.h"
#include "models/models.h"
#include "support/counters.h"
#include "support/rng.h"

namespace triad {
namespace {

int count_kind(const IrGraph& g, OpKind k) {
  int c = 0;
  for (const Node& n : g.nodes()) c += n.kind == k;
  return c;
}

int count_apply(const IrGraph& g, ApplyFn fn) {
  int c = 0;
  for (const Node& n : g.nodes()) c += n.kind == OpKind::Apply && n.afn == fn;
  return c;
}

std::uint64_t hits_of(const std::vector<RuleStat>& stats,
                      const std::string& rule) {
  for (const RuleStat& s : stats) {
    if (s.rule == rule) return s.hits;
  }
  return 0;
}

// --- simplify rule units ----------------------------------------------------

TEST(Rewriter, IdentityElision) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int i1 = g.apply_unary(ApplyFn::Identity, x);
  const int y = g.apply_unary(ApplyFn::ReLU, i1);
  g.mark_output(y);
  std::vector<RuleStat> stats;
  IrGraph out = simplify_pass(std::move(g), &stats);
  EXPECT_EQ(hits_of(stats, "identity"), 1u);
  EXPECT_EQ(count_apply(out, ApplyFn::Identity), 0);
  // ReLU now reads the input directly; the Identity node was DCE'd.
  EXPECT_EQ(out.size(), 2);
  out.validate(0, 0);
}

TEST(Rewriter, ScaleOneAndSliceNoopElision) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int s1 = g.apply_unary(ApplyFn::Scale, x, 1.f);          // folds
  const int s2 = g.apply_unary(ApplyFn::Scale, s1, 0.5f);        // stays
  const int sl = g.slice_cols(s2, 0, 4);                          // folds
  const int sl2 = g.slice_cols(sl, 1, 3);                         // stays
  g.mark_output(sl2);
  std::vector<RuleStat> stats;
  IrGraph out = simplify_pass(std::move(g), &stats);
  EXPECT_EQ(hits_of(stats, "scale-one"), 1u);
  EXPECT_EQ(hits_of(stats, "slice-noop"), 1u);
  EXPECT_EQ(out.size(), 3);  // input, Scale(0.5), SliceCols(1,3)
  out.validate(0, 0);
}

TEST(Rewriter, NegNegCancels) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int n1 = g.apply_unary(ApplyFn::Neg, x);
  const int n2 = g.apply_unary(ApplyFn::Neg, n1);
  const int y = g.apply_unary(ApplyFn::ReLU, n2);
  g.mark_output(y);
  std::vector<RuleStat> stats;
  IrGraph out = simplify_pass(std::move(g), &stats);
  EXPECT_EQ(hits_of(stats, "neg-neg"), 1u);
  EXPECT_EQ(count_apply(out, ApplyFn::Neg), 0);
  EXPECT_EQ(out.size(), 2);
}

TEST(Rewriter, AddOfNegBecomesSub) {
  IrGraph g;
  const int a = g.input(Space::Vertex, 0, 4, "a");
  const int b = g.input(Space::Vertex, 0, 4, "b");
  const int nb = g.apply_unary(ApplyFn::Neg, b);
  const int add = g.apply_binary(ApplyFn::Add, a, nb);
  g.mark_output(add);
  std::vector<RuleStat> stats;
  IrGraph out = simplify_pass(std::move(g), &stats);
  EXPECT_EQ(hits_of(stats, "neg-fold"), 1u);
  EXPECT_EQ(count_apply(out, ApplyFn::Neg), 0);
  EXPECT_EQ(count_apply(out, ApplyFn::Sub), 1);
  const Node& sub = out.node(out.outputs[0]);
  EXPECT_EQ(sub.afn, ApplyFn::Sub);
  EXPECT_EQ(sub.inputs[0], 0);
  EXPECT_EQ(sub.inputs[1], 1);
}

TEST(Rewriter, SubOfNegBecomesAddAndSharedNegSurvives) {
  IrGraph g;
  const int a = g.input(Space::Vertex, 0, 4, "a");
  const int b = g.input(Space::Vertex, 0, 4, "b");
  const int nb = g.apply_unary(ApplyFn::Neg, b);
  const int sub = g.apply_binary(ApplyFn::Sub, a, nb);
  const int keep = g.apply_unary(ApplyFn::ReLU, nb);  // second consumer
  g.mark_output(sub);
  g.mark_output(keep);
  IrGraph out = simplify_pass(std::move(g));
  // Sub(a, Neg(b)) -> Add(a, b); the Neg stays for its other consumer.
  EXPECT_EQ(count_apply(out, ApplyFn::Add), 1);
  EXPECT_EQ(count_apply(out, ApplyFn::Neg), 1);
}

TEST(Rewriter, NegFoldsThroughRoutingChain) {
  // The exact shape autodiff emits for CopyV-scatter backward under a Sub:
  //   Add(a, CopyV(GatherSum(Neg(x))))  ->  Sub(a, CopyV(GatherSum(x)))
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int e = g.scatter(ScatterFn::CopyU, x, -1);
  const int neg = g.apply_unary(ApplyFn::Neg, e);
  const int gat = g.gather(ReduceFn::Sum, neg);
  const int bc = g.scatter(ScatterFn::CopyV, gat, -1);
  const int a = g.scatter(ScatterFn::CopyU, x, -1);
  const int add = g.apply_binary(ApplyFn::Add, a, bc);
  g.mark_output(add);
  std::vector<RuleStat> stats;
  IrGraph out = simplify_pass(std::move(g), &stats);
  EXPECT_GE(hits_of(stats, "neg-fold"), 1u);
  EXPECT_EQ(count_apply(out, ApplyFn::Neg), 0);
  EXPECT_EQ(count_apply(out, ApplyFn::Sub), 1);
  out.validate(0, 0);
}

TEST(Rewriter, NegChainNotFoldedWhenLinkIsShared) {
  // The gather has a second consumer: flipping its sign would corrupt it.
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int e = g.scatter(ScatterFn::CopyU, x, -1);
  const int neg = g.apply_unary(ApplyFn::Neg, e);
  const int gat = g.gather(ReduceFn::Sum, neg);
  const int bc = g.scatter(ScatterFn::CopyV, gat, -1);
  const int a = g.scatter(ScatterFn::CopyU, x, -1);
  const int add = g.apply_binary(ApplyFn::Add, a, bc);
  g.mark_output(add);
  g.mark_output(gat);  // second observer of the chain value
  IrGraph out = simplify_pass(std::move(g));
  EXPECT_EQ(count_apply(out, ApplyFn::Neg), 1);
  EXPECT_EQ(count_apply(out, ApplyFn::Sub), 0);
}

// --- CSE --------------------------------------------------------------------

TEST(Rewriter, CseMergesScatterGatherTrees) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  // Two structurally identical Scatter->Gather trees.
  const int e1 = g.scatter(ScatterFn::CopyU, x, -1);
  const int g1 = g.gather(ReduceFn::Sum, e1);
  const int e2 = g.scatter(ScatterFn::CopyU, x, -1);
  const int g2 = g.gather(ReduceFn::Sum, e2);
  const int sum = g.apply_binary(ApplyFn::Add, g1, g2);
  g.mark_output(sum);
  std::vector<RuleStat> stats;
  IrGraph out = cse_pass(std::move(g), &stats);
  // The duplicate tree merges bottom-up in one sweep: scatter first, then
  // the gather (whose canonicalized input now matches).
  EXPECT_EQ(hits_of(stats, "cse"), 2u);
  EXPECT_EQ(out.size(), 4);  // input, scatter, gather, add
  const Node& add = out.node(out.outputs[0]);
  EXPECT_EQ(add.inputs[0], add.inputs[1]);
}

TEST(Rewriter, CseRespectsAttributesAndLeafIdentity) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int s1 = g.apply_unary(ApplyFn::Scale, x, 2.f);
  const int s2 = g.apply_unary(ApplyFn::Scale, x, 3.f);  // different alpha
  const int r1 = g.gather(ReduceFn::Sum, g.scatter(ScatterFn::CopyU, x, -1),
                          /*reverse=*/false);
  const int r2 = g.gather(ReduceFn::Sum, g.scatter(ScatterFn::CopyU, x, -1),
                          /*reverse=*/true);  // different orientation
  const int p1 = g.param(4, 4, "p1");
  const int p2 = g.param(4, 4, "p2");  // identical shape: must keep identity
  const int m1 = g.linear(x, p1);
  const int m2 = g.linear(x, p2);
  int acc = g.apply_binary(ApplyFn::Add, s1, s2);
  acc = g.apply_binary(ApplyFn::Add, acc, r1);
  acc = g.apply_binary(ApplyFn::Add, acc, r2);
  acc = g.apply_binary(ApplyFn::Add, acc, m1);
  acc = g.apply_binary(ApplyFn::Add, acc, m2);
  g.mark_output(acc);
  const int before = g.size();
  std::vector<RuleStat> stats;
  IrGraph out = cse_pass(std::move(g), &stats);
  // Only the two identical CopyU scatters merge; params, differing alphas
  // and differing gather orientations all stay distinct.
  EXPECT_EQ(hits_of(stats, "cse"), 1u);
  EXPECT_EQ(out.size(), before - 1);
  EXPECT_EQ(count_kind(out, OpKind::Param), 2);
}

// --- DCE --------------------------------------------------------------------

TEST(Rewriter, DceDropsDeadChainAndOrphanedParam) {
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int w = g.param(4, 4, "w");
  const int live = g.apply_unary(ApplyFn::ReLU, x);
  const int dead1 = g.linear(x, w);
  const int dead2 = g.apply_unary(ApplyFn::ReLU, dead1);
  (void)dead2;
  g.mark_output(live);

  // Bound leaves survive by default (the harness binds them by name)…
  DceStats kept;
  IrGraph out_keep = dce_pass(g, /*keep_bound=*/true, &kept);
  EXPECT_EQ(kept.dropped_nodes, 2);  // the dead Linear + ReLU chain
  EXPECT_EQ(count_kind(out_keep, OpKind::Param), 1);

  // …and orphaned Params drop when the roots are outputs only.
  DceStats dropped;
  IrGraph out_drop = dce_pass(g, /*keep_bound=*/false, &dropped);
  EXPECT_EQ(dropped.dropped_nodes, 3);
  EXPECT_EQ(count_kind(out_drop, OpKind::Param), 0);
  EXPECT_EQ(out_drop.size(), 2);
  out_drop.validate(0, 0);
}

TEST(Rewriter, DceDropsOrphanedFusedOutAndDeadProgram) {
  // Two fused regions; afterwards only one output is demanded. The dead
  // region's Fused/FusedOut nodes and its EdgeProgram must disappear, and
  // the surviving program's references must be remapped to compacted ids.
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int e1 = g.scatter(ScatterFn::CopyU, x, -1);
  const int r1 = g.apply_unary(ApplyFn::ReLU, e1);
  const int g1 = g.gather(ReduceFn::Sum, r1);
  const int e2 = g.scatter(ScatterFn::CopyV, x, -1);
  const int r2 = g.apply_unary(ApplyFn::ELU, e2, 1.f);
  const int g2 = g.gather(ReduceFn::Sum, r2);
  g.mark_output(g1);
  g.mark_output(g2);
  IrGraph fused = fusion_pass(g);
  ASSERT_EQ(fused.programs.size(), 2u);
  ASSERT_EQ(count_kind(fused, OpKind::Fused), 2);

  // Demand only the second region's output.
  fused.outputs.erase(fused.outputs.begin());
  DceStats stats;
  IrGraph out = dce_pass(fused, /*keep_bound=*/true, &stats);
  EXPECT_EQ(count_kind(out, OpKind::Fused), 1);
  EXPECT_EQ(count_kind(out, OpKind::FusedOut), 1);
  EXPECT_EQ(out.programs.size(), 1u);
  EXPECT_EQ(stats.dropped_programs, 1);
  // The surviving program's vertex output points at the compacted FusedOut.
  ASSERT_EQ(out.programs[0].vertex_outputs.size(), 1u);
  const int fo = out.programs[0].vertex_outputs[0].node;
  EXPECT_EQ(out.node(fo).kind, OpKind::FusedOut);
  out.validate(0, 0);
}

TEST(Rewriter, DcePrunesUnusedStoreFromLiveProgram) {
  // One region with a vertex output AND an edge output; the edge output
  // loses its consumer. The StoreE instruction and the FusedOut must go,
  // while the reduction survives.
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int e = g.scatter(ScatterFn::CopyU, x, -1);
  const int r = g.apply_unary(ApplyFn::ReLU, e);
  const int gt = g.gather(ReduceFn::Sum, r);
  g.mark_output(r);   // forces StoreE of the edge value
  g.mark_output(gt);
  IrGraph fused = fusion_pass(g);
  ASSERT_EQ(fused.programs.size(), 1u);
  ASSERT_EQ(fused.programs[0].edge_outputs.size(), 1u);

  // Drop the edge-output demand.
  std::vector<int> keep;
  for (int o : fused.outputs) {
    if (fused.node(o).space == Space::Vertex) keep.push_back(o);
  }
  fused.outputs = keep;
  DceStats stats;
  IrGraph out = dce_pass(fused, /*keep_bound=*/true, &stats);
  ASSERT_EQ(out.programs.size(), 1u);
  EXPECT_EQ(out.programs[0].edge_outputs.size(), 0u);
  EXPECT_EQ(out.programs[0].vertex_outputs.size(), 1u);
  EXPECT_GE(stats.dropped_stores, 1);
  for (const EPPhase& ph : out.programs[0].phases) {
    for (const EPInstr& in : ph.instrs) {
      EXPECT_NE(in.op, EPOp::StoreE);
    }
  }
  out.validate(0, 0);
}

TEST(Rewriter, DceRenumbersSurvivingFusedOutIndices) {
  // Drop the *first* program output (the vertex reduction) and keep the
  // second (the stored edge tensor): the survivor's out_index must compact
  // to 0 so "which program output" stays truthful in dumps and DOT.
  IrGraph g;
  const int x = g.input(Space::Vertex, 0, 4, "x");
  const int e = g.scatter(ScatterFn::CopyU, x, -1);
  const int r = g.apply_unary(ApplyFn::ReLU, e);
  const int gt = g.gather(ReduceFn::Sum, r);
  g.mark_output(r);
  g.mark_output(gt);
  IrGraph fused = fusion_pass(g);
  ASSERT_EQ(fused.programs.size(), 1u);

  std::vector<int> keep;
  for (int o : fused.outputs) {
    if (fused.node(o).space == Space::Edge) keep.push_back(o);
  }
  fused.outputs = keep;
  IrGraph out = dce_pass(fused, /*keep_bound=*/true);
  ASSERT_EQ(out.programs.size(), 1u);
  EXPECT_EQ(out.programs[0].vertex_outputs.size(), 0u);
  ASSERT_EQ(out.programs[0].edge_outputs.size(), 1u);
  EXPECT_EQ(out.node(out.programs[0].edge_outputs[0].node).out_index, 0);
  out.validate(0, 0);
}

// --- fixpoint / budget ------------------------------------------------------

TEST(Rewriter, CyclicRewriteTrapTerminatesOnBudget) {
  // Adversarial rule pair: Add -> Sub -> Add forever. The rewriter must
  // terminate deterministically on its budget and report exhaustion.
  IrGraph g;
  const int a = g.input(Space::Vertex, 0, 4, "a");
  const int b = g.input(Space::Vertex, 0, 4, "b");
  const int s = g.apply_binary(ApplyFn::Add, a, b);
  g.mark_output(s);

  Rewriter rw;
  rw.add_rule("to-sub",
              [](IrGraph& gr, int id, const RewriteCtx&, RewriteResult& res) {
                if (gr.node(id).kind != OpKind::Apply ||
                    gr.node(id).afn != ApplyFn::Add) {
                  return;
                }
                gr.node_mut(id).afn = ApplyFn::Sub;
                res.changed = true;
              });
  rw.add_rule("to-add",
              [](IrGraph& gr, int id, const RewriteCtx&, RewriteResult& res) {
                if (gr.node(id).kind != OpKind::Apply ||
                    gr.node(id).afn != ApplyFn::Sub) {
                  return;
                }
                gr.node_mut(id).afn = ApplyFn::Add;
                res.changed = true;
              });
  RewriteOptions opts;
  opts.max_rounds = 1000000;  // rounds alone must not be the stopper
  opts.max_rewrites = 64;
  CounterScope scope;
  IrGraph out = rw.run(std::move(g), opts);
  EXPECT_TRUE(rw.budget_exhausted());
  EXPECT_EQ(hits_of(rw.stats(), "to-sub") + hits_of(rw.stats(), "to-add"), 64u);
  EXPECT_EQ(scope.delta().graph_rewrites, 64u);
  EXPECT_EQ(out.size(), 3);  // graph survives intact
  out.validate(0, 0);

  // Round cap alone also terminates it.
  Rewriter rw2;
  rw2.add_rule("flip",
               [](IrGraph& gr, int id, const RewriteCtx&, RewriteResult& res) {
                 Node& n = gr.node_mut(id);
                 if (n.kind != OpKind::Apply) return;
                 n.afn = n.afn == ApplyFn::Add ? ApplyFn::Sub : ApplyFn::Add;
                 res.changed = true;
               });
  RewriteOptions opts2;
  opts2.max_rounds = 3;
  IrGraph g2;
  const int a2 = g2.input(Space::Vertex, 0, 4, "a");
  g2.mark_output(g2.apply_binary(ApplyFn::Add, a2, a2));
  IrGraph out2 = rw2.run(std::move(g2), opts2);
  EXPECT_FALSE(rw2.budget_exhausted());
  EXPECT_EQ(hits_of(rw2.stats(), "flip"), 3u);
}

// --- id-compaction invariants ----------------------------------------------

IrGraph gat_backward_graph() {
  GatConfig cfg;
  cfg.in_dim = 10;
  cfg.hidden = 12;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = 4;
  Rng rng(4242);
  ModelGraph m = build_gat(cfg, rng);
  IrGraph ir = std::move(m.ir);
  ir.outputs.clear();
  ir.mark_output(m.output);
  ir = reorg_pass(ir);
  BackwardResult bwd = build_backward(ir, ir.outputs[0]);
  for (const auto& [param, grad] : bwd.param_grads) ir.mark_output(grad);
  return ir;
}

TEST(Rewriter, OptimizeCompactsGatBackwardAndPreservesInvariants) {
  IrGraph ir = gat_backward_graph();
  const int before = ir.size();
  const int outputs_before = static_cast<int>(ir.outputs.size());
  const int bound_before = count_kind(ir, OpKind::Input) +
                           count_kind(ir, OpKind::Param);
  std::vector<RuleStat> stats;
  IrGraph out = optimize_pass(std::move(ir), &stats);

  // The measurable reduction the paper-layer passes cannot see: autodiff's
  // Neg chains fold away (one |E|-row kernel each).
  EXPECT_LT(out.size(), before);
  EXPECT_GE(hits_of(stats, "neg-fold"), 2u);

  // Compaction invariants: dense topological ids, preserved outputs and
  // bound leaves, and a backward boundary that still points at the seed.
  out.validate(0, 0);
  for (const Node& n : out.nodes()) {
    EXPECT_EQ(n.id, &n - out.nodes().data());
    for (int i : n.inputs) EXPECT_LT(i, n.id);
  }
  EXPECT_EQ(static_cast<int>(out.outputs.size()), outputs_before);
  EXPECT_EQ(count_kind(out, OpKind::Input) + count_kind(out, OpKind::Param),
            bound_before);
  ASSERT_GE(out.backward_start, 0);
  EXPECT_EQ(out.node(out.backward_start).name, "grad_seed");
  for (const Node& n : out.nodes()) {
    if (n.id >= out.backward_start) continue;
    for (int i : n.inputs) EXPECT_LT(i, out.backward_start);
  }
}

TEST(Rewriter, OptimizedGatCompilesUnderFullPipeline) {
  // End-to-end: the optimizer's compacted ids must survive recompute, fusion
  // and ExecutionPlan::compile's free-list consistency checks.
  GatConfig cfg;
  cfg.in_dim = 10;
  cfg.hidden = 12;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.num_classes = 4;
  Rng rng(7);
  Compiled c = compile_model(build_gat(cfg, rng), ours(), /*training=*/true,
                             /*num_vertices=*/32, /*num_edges=*/128);
  ASSERT_NE(c.plan, nullptr);
  bool saw_optimize = false;
  for (const PassInfo& p : c.stats.passes) {
    if (p.name == "optimize") {
      saw_optimize = true;
      EXPECT_LT(p.nodes_after, p.nodes_before);
    }
  }
  EXPECT_TRUE(saw_optimize);
}

}  // namespace
}  // namespace triad
